#include "mrkd/mrkd_tree.h"

#include "common/parallel.h"
#include "crypto/hasher.h"

namespace imageproof::mrkd {

MrkdTree::MrkdTree(const ann::RkdTree* tree, RevealMode mode,
                   const std::vector<Digest>& list_digests)
    : tree_(tree), mode_(mode), list_digests_(&list_digests) {
  ClusterCommitments(mode_, tree_->points(), &cluster_commitments_);
  node_digests_.resize(tree_->nodes().size());
  BuildNodeDigests();
  BuildParentsAndLeafMap();
}

void MrkdTree::BuildParentsAndLeafMap() {
  const auto& nodes = tree_->nodes();
  parents_.assign(nodes.size(), -1);
  leaf_of_.assign(tree_->points().size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const ann::RkdNode& n = nodes[i];
    if (n.IsLeaf()) {
      for (int32_t j = n.begin; j < n.end; ++j) {
        leaf_of_[tree_->point_indices()[j]] = static_cast<int32_t>(i);
      }
    } else {
      parents_[n.left] = static_cast<int32_t>(i);
      parents_[n.right] = static_cast<int32_t>(i);
    }
  }
}

Digest MrkdTree::RecomputeLocalDigest(int node) {
  const ann::RkdNode& n = tree_->nodes()[node];
  crypto::DigestBuilder b;
  if (n.IsLeaf()) {
    for (int32_t i = n.begin; i < n.end; ++i) {
      ClusterId c = static_cast<ClusterId>(tree_->point_indices()[i]);
      b.AddDigest(cluster_commitments_[c]);
      b.AddDigest((*list_digests_)[c]);
    }
  } else {
    HashInternal(b, static_cast<uint32_t>(n.split_dim), n.split_value,
                 node_digests_[n.left], node_digests_[n.right]);
  }
  return b.Finalize();
}

size_t MrkdTree::RefreshListDigest(ClusterId c) {
  if (c >= leaf_of_.size() || leaf_of_[c] < 0) return 0;
  size_t rehashed = 0;
  for (int32_t node = leaf_of_[c]; node >= 0; node = parents_[node]) {
    node_digests_[node] = RecomputeLocalDigest(node);
    ++rehashed;
  }
  return rehashed;
}

void MrkdTree::HashInternal(crypto::DigestBuilder& b, uint32_t split_dim,
                            float split_value, const Digest& left,
                            const Digest& right) {
  b.AddU32(split_dim);
  b.AddF32(split_value);
  b.AddDigest(left);
  b.AddDigest(right);
}

void MrkdTree::BuildNodeDigests() {
  const auto& nodes = tree_->nodes();
  if (nodes.empty()) return;

  // Group nodes by depth (BFS from the root: a node's children always sit
  // one level deeper), then digest the levels deepest-first. Every node's
  // preimage depends only on strictly deeper digests, so within a level the
  // hashes are independent — batched four-wide and chunk-parallel. Each
  // digest is a pure function of its own preimage bytes, so the result is
  // byte-identical to the old post-order recursion.
  std::vector<int32_t> order;
  order.reserve(nodes.size());
  std::vector<size_t> level_begin;  // index into `order` where each depth starts
  order.push_back(static_cast<int32_t>(tree_->root()));
  level_begin.push_back(0);
  size_t frontier = 0;
  while (frontier < order.size()) {
    const size_t level_end = order.size();
    for (; frontier < level_end; ++frontier) {
      const ann::RkdNode& n = nodes[order[frontier]];
      if (!n.IsLeaf()) {
        order.push_back(n.left);
        order.push_back(n.right);
      }
    }
    if (order.size() > level_end) level_begin.push_back(level_end);
  }

  for (size_t lvl = level_begin.size(); lvl-- > 0;) {
    const size_t begin = level_begin[lvl];
    const size_t end = lvl + 1 < level_begin.size() ? level_begin[lvl + 1]
                                                    : order.size();
    ParallelChunks(end - begin, /*chunk=*/512, [&](size_t cb, size_t ce) {
      const size_t count = ce - cb;
      // Assemble this chunk's preimages (canonical ByteWriter encodings —
      // the same bytes DigestBuilder streams) and batch-digest them.
      ByteWriter w;
      std::vector<size_t> offsets(count + 1, 0);
      for (size_t i = 0; i < count; ++i) {
        const int32_t node = order[begin + cb + i];
        const ann::RkdNode& n = nodes[node];
        if (n.IsLeaf()) {
          for (int32_t j = n.begin; j < n.end; ++j) {
            ClusterId c = static_cast<ClusterId>(tree_->point_indices()[j]);
            crypto::PutDigest(w, cluster_commitments_[c]);
            crypto::PutDigest(w, (*list_digests_)[c]);
          }
        } else {
          w.PutU32(static_cast<uint32_t>(n.split_dim));
          w.PutF32(n.split_value);
          crypto::PutDigest(w, node_digests_[n.left]);
          crypto::PutDigest(w, node_digests_[n.right]);
        }
        offsets[i + 1] = w.bytes().size();
      }
      std::vector<BytesView> msgs;
      std::vector<Digest> outs(count);
      msgs.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        msgs.emplace_back(w.bytes().data() + offsets[i],
                          offsets[i + 1] - offsets[i]);
      }
      crypto::HashBatch(msgs.data(), outs.data(), count);
      for (size_t i = 0; i < count; ++i) {
        node_digests_[order[begin + cb + i]] = outs[i];
      }
    });
  }
}

}  // namespace imageproof::mrkd
