#include "mrkd/mrkd_tree.h"

#include "common/parallel.h"
#include "crypto/hasher.h"

namespace imageproof::mrkd {

MrkdTree::MrkdTree(const ann::RkdTree* tree, RevealMode mode,
                   const std::vector<Digest>& list_digests)
    : tree_(tree), mode_(mode), list_digests_(&list_digests) {
  const ann::PointSet& points = tree_->points();
  cluster_commitments_.resize(points.size());
  ParallelFor(points.size(), [&](size_t c) {
    cluster_commitments_[c] = ClusterCommitment(
        mode_, static_cast<ClusterId>(c), points.row(c), points.dims());
  });
  node_digests_.resize(tree_->nodes().size());
  if (!tree_->nodes().empty()) ComputeNodeDigest(tree_->root());
  BuildParentsAndLeafMap();
}

void MrkdTree::BuildParentsAndLeafMap() {
  const auto& nodes = tree_->nodes();
  parents_.assign(nodes.size(), -1);
  leaf_of_.assign(tree_->points().size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const ann::RkdNode& n = nodes[i];
    if (n.IsLeaf()) {
      for (int32_t j = n.begin; j < n.end; ++j) {
        leaf_of_[tree_->point_indices()[j]] = static_cast<int32_t>(i);
      }
    } else {
      parents_[n.left] = static_cast<int32_t>(i);
      parents_[n.right] = static_cast<int32_t>(i);
    }
  }
}

Digest MrkdTree::RecomputeLocalDigest(int node) {
  const ann::RkdNode& n = tree_->nodes()[node];
  crypto::DigestBuilder b;
  if (n.IsLeaf()) {
    for (int32_t i = n.begin; i < n.end; ++i) {
      ClusterId c = static_cast<ClusterId>(tree_->point_indices()[i]);
      b.AddDigest(cluster_commitments_[c]);
      b.AddDigest((*list_digests_)[c]);
    }
  } else {
    HashInternal(b, static_cast<uint32_t>(n.split_dim), n.split_value,
                 node_digests_[n.left], node_digests_[n.right]);
  }
  return b.Finalize();
}

size_t MrkdTree::RefreshListDigest(ClusterId c) {
  if (c >= leaf_of_.size() || leaf_of_[c] < 0) return 0;
  size_t rehashed = 0;
  for (int32_t node = leaf_of_[c]; node >= 0; node = parents_[node]) {
    node_digests_[node] = RecomputeLocalDigest(node);
    ++rehashed;
  }
  return rehashed;
}

void MrkdTree::HashInternal(crypto::DigestBuilder& b, uint32_t split_dim,
                            float split_value, const Digest& left,
                            const Digest& right) {
  b.AddU32(split_dim);
  b.AddF32(split_value);
  b.AddDigest(left);
  b.AddDigest(right);
}

Digest MrkdTree::ComputeNodeDigest(int node) {
  const ann::RkdNode& n = tree_->nodes()[node];
  crypto::DigestBuilder b;
  if (n.IsLeaf()) {
    for (int32_t i = n.begin; i < n.end; ++i) {
      ClusterId c = static_cast<ClusterId>(tree_->point_indices()[i]);
      b.AddDigest(cluster_commitments_[c]);
      b.AddDigest((*list_digests_)[c]);
    }
  } else {
    Digest left = ComputeNodeDigest(n.left);
    Digest right = ComputeNodeDigest(n.right);
    HashInternal(b, static_cast<uint32_t>(n.split_dim), n.split_value, left,
                 right);
  }
  node_digests_[node] = b.Finalize();
  return node_digests_[node];
}

}  // namespace imageproof::mrkd
