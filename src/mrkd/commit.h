// Cluster commitments for the MRKD-tree leaves, plus the candidate-reveal
// section of the BoVW verification object.
//
// A leaf of the MRKD-tree stores feature clusters; its digest (Definition 3)
// must bind each cluster's *coordinates* so the client can check distances.
// Two commitment modes are supported:
//
//   kFullVector  — ccommit = h(id | dims | coord_0 | ... | coord_{d-1});
//                  the base ImageProof scheme. Verifying a candidate
//                  requires revealing the whole vector.
//   kDimMerkle   — ccommit = h(id | dims | merkle_root(coord blocks));
//                  Optimization A (Section VI-A). The SP may reveal only the
//                  few dimensions whose partial distance already proves a
//                  candidate is not the nearest neighbor, authenticated by a
//                  Merkle subset proof. Trades client hashing for VO size.
//                  Merkle leaves cover kDimBlock consecutive dimensions —
//                  per-dimension leaves would make every sibling digest
//                  (32 B) cost more than the 4-byte coordinates it elides,
//                  so block granularity is what makes the optimization
//                  actually shrink the VO.
//
// The reveal section is shared across all MRKD-trees and all query vectors:
// each candidate cluster appears exactly once (the paper's sharing
// strategy), fully if it is some query's assigned cluster, partially
// otherwise (in kDimMerkle mode).

#ifndef IMAGEPROOF_MRKD_COMMIT_H_
#define IMAGEPROOF_MRKD_COMMIT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ann/points.h"
#include "common/bytes.h"
#include "common/status.h"
#include "crypto/digest.h"

namespace imageproof::mrkd {

using crypto::Digest;
using ClusterId = uint32_t;

enum class RevealMode : uint8_t {
  kFullVector = 0,
  kDimMerkle = 1,
};

// Dimensions per Merkle leaf in kDimMerkle mode.
inline constexpr size_t kDimBlock = 8;

class DimTreeMemo;  // memo.h — per-snapshot cache of coordinate-block trees

// The kDimMerkle Merkle leaf payloads for one cluster's coordinates, one
// per kDimBlock-dimension block (exported for DimTreeMemo, which builds
// the same trees BuildReveal would and must stay byte-identical).
std::vector<Bytes> CoordBlockLeaves(const float* coords, size_t dims);

// Commitment of one cluster (digest embedded in the leaf digest).
Digest ClusterCommitment(RevealMode mode, ClusterId id, const float* coords,
                         size_t dims);

// Owner-side batch form: commitments for every cluster of the codebook,
// parallel across clusters and hashed through the 4-lane batch digest API.
// (*out)[c] == ClusterCommitment(mode, c, points.row(c), points.dims()),
// byte-for-byte.
void ClusterCommitments(RevealMode mode, const ann::PointSet& points,
                        std::vector<Digest>* out);

// A cluster's entry in the reveal section.
struct ClusterReveal {
  ClusterId id = 0;
  bool full = true;
  std::vector<float> coords;           // full: all dims
  std::vector<uint32_t> dim_indices;   // partial: revealed dimension indices
  std::vector<float> dim_values;       // partial: their values
  std::vector<Digest> proof;           // partial: Merkle subset proof
};

// Lower bound on squared distance from q to a partially revealed cluster
// (sum over revealed dimensions only).
double PartialDistanceSq(const float* query,
                         const std::vector<uint32_t>& dim_indices,
                         const std::vector<float>& dim_values);

// SP side: builds the reveal for cluster `id`.
//
// * mode kFullVector, or `full_reveal`: reveals all coordinates.
// * mode kDimMerkle partial: greedily reveals the kDimBlock-dimension
//   blocks with the largest total squared difference against `queries`
//   until, for every query q in `queries` (paired with its exclusion bound
//   `bounds[q]`), PartialDistanceSq(q) > bounds[q]. Falls back to a full
//   reveal if the partial bound cannot strictly exceed every bound or if
//   the partial encoding would not be smaller.
// `memo` (optional) supplies the per-snapshot coordinate-block Merkle tree
// cache (memo.h): concurrent queries revealing the same cluster then share
// one tree build instead of re-deriving it. Output is byte-identical with
// or without it.
ClusterReveal BuildReveal(RevealMode mode, ClusterId id, const float* coords,
                          size_t dims, bool full_reveal,
                          const std::vector<const float*>& queries,
                          const std::vector<double>& bounds,
                          const DimTreeMemo* memo = nullptr);

// Client side: recomputes the cluster commitment from a reveal. Fails if a
// partial reveal is malformed (bad indices / proof). On success the caller
// compares the digest against the one bound into the MRKD leaf.
Status VerifyReveal(RevealMode mode, size_t dims, const ClusterReveal& reveal,
                    Digest* commitment_out);

// Canonical serialization of the whole reveal section.
void SerializeReveals(const std::vector<ClusterReveal>& reveals, ByteWriter& w);
Status DeserializeReveals(ByteReader& r, size_t dims,
                          std::vector<ClusterReveal>* out);

}  // namespace imageproof::mrkd

#endif  // IMAGEPROOF_MRKD_COMMIT_H_
