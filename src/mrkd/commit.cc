#include "mrkd/commit.h"

#include <algorithm>

#include "common/parallel.h"
#include "crypto/hasher.h"
#include "merkle/merkle_tree.h"
#include "mrkd/memo.h"

namespace imageproof::mrkd {

namespace {

size_t NumBlocks(size_t dims) { return (dims + kDimBlock - 1) / kDimBlock; }

// Merkle leaf payload for one block: the IEEE-754 bits of its coordinates
// (the last block may be shorter than kDimBlock).
Bytes BlockLeaf(const float* coords, size_t dims, size_t block) {
  ByteWriter w;
  size_t begin = block * kDimBlock;
  size_t end = std::min(dims, begin + kDimBlock);
  for (size_t d = begin; d < end; ++d) w.PutF32(coords[d]);
  return w.Take();
}

std::vector<Bytes> BlockLeaves(const float* coords, size_t dims) {
  size_t n = NumBlocks(dims);
  std::vector<Bytes> leaves(n);
  for (size_t b = 0; b < n; ++b) leaves[b] = BlockLeaf(coords, dims, b);
  return leaves;
}

}  // namespace

std::vector<Bytes> CoordBlockLeaves(const float* coords, size_t dims) {
  return BlockLeaves(coords, dims);
}

Digest ClusterCommitment(RevealMode mode, ClusterId id, const float* coords,
                         size_t dims) {
  crypto::DigestBuilder b;
  b.AddU8(static_cast<uint8_t>(mode));
  b.AddU32(id);
  b.AddU32(static_cast<uint32_t>(dims));
  if (mode == RevealMode::kFullVector) {
    for (size_t d = 0; d < dims; ++d) b.AddF32(coords[d]);
  } else {
    merkle::MerkleTree tree(BlockLeaves(coords, dims));
    b.AddDigest(tree.root());
  }
  return b.Finalize();
}

void ClusterCommitments(RevealMode mode, const ann::PointSet& points,
                        std::vector<Digest>* out) {
  const size_t n = points.size();
  const size_t dims = points.dims();
  out->assign(n, Digest::Zero());
  ParallelChunks(n, /*chunk=*/256, [&](size_t begin, size_t end) {
    const size_t count = end - begin;
    // Assemble the commitment preimages into one buffer (canonical
    // ByteWriter encodings — identical bytes to the DigestBuilder stream in
    // ClusterCommitment), then digest them four at a time.
    ByteWriter w;
    std::vector<size_t> offsets(count + 1, 0);
    for (size_t i = 0; i < count; ++i) {
      const ClusterId c = static_cast<ClusterId>(begin + i);
      const float* coords = points.row(begin + i);
      w.PutU8(static_cast<uint8_t>(mode));
      w.PutU32(c);
      w.PutU32(static_cast<uint32_t>(dims));
      if (mode == RevealMode::kFullVector) {
        for (size_t d = 0; d < dims; ++d) w.PutF32(coords[d]);
      } else {
        merkle::MerkleTree tree(BlockLeaves(coords, dims));
        crypto::PutDigest(w, tree.root());
      }
      offsets[i + 1] = w.bytes().size();
    }
    std::vector<BytesView> msgs;
    msgs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      msgs.emplace_back(w.bytes().data() + offsets[i],
                        offsets[i + 1] - offsets[i]);
    }
    crypto::HashBatch(msgs.data(), out->data() + begin, count);
  });
}

double PartialDistanceSq(const float* query,
                         const std::vector<uint32_t>& dim_indices,
                         const std::vector<float>& dim_values) {
  double acc = 0;
  for (size_t i = 0; i < dim_indices.size(); ++i) {
    double diff = static_cast<double>(query[dim_indices[i]]) - dim_values[i];
    acc += diff * diff;
  }
  return acc;
}

ClusterReveal BuildReveal(RevealMode mode, ClusterId id, const float* coords,
                          size_t dims, bool full_reveal,
                          const std::vector<const float*>& queries,
                          const std::vector<double>& bounds,
                          const DimTreeMemo* memo) {
  ClusterReveal reveal;
  reveal.id = id;
  if (mode == RevealMode::kFullVector || full_reveal || queries.empty()) {
    reveal.full = true;
    reveal.coords.assign(coords, coords + dims);
    return reveal;
  }

  // Greedy block selection: order blocks by total squared difference summed
  // over the queries this cluster must be excluded for.
  const size_t num_blocks = NumBlocks(dims);
  std::vector<double> gain(num_blocks, 0.0);
  for (const float* q : queries) {
    for (size_t d = 0; d < dims; ++d) {
      double diff = static_cast<double>(q[d]) - coords[d];
      gain[d / kDimBlock] += diff * diff;
    }
  }
  std::vector<uint32_t> order(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) order[b] = static_cast<uint32_t>(b);
  std::sort(order.begin(), order.end(),
            [&gain](uint32_t a, uint32_t b) { return gain[a] > gain[b]; });

  std::vector<double> partial(queries.size(), 0.0);
  std::vector<uint32_t> chosen_blocks;
  bool all_excluded = false;
  for (uint32_t blk : order) {
    chosen_blocks.push_back(blk);
    size_t begin = static_cast<size_t>(blk) * kDimBlock;
    size_t end = std::min(dims, begin + kDimBlock);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (size_t d = begin; d < end; ++d) {
        double diff = static_cast<double>(queries[qi][d]) - coords[d];
        partial[qi] += diff * diff;
      }
    }
    all_excluded = true;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (partial[qi] <= bounds[qi]) {
        all_excluded = false;
        break;
      }
    }
    if (all_excluded) break;
  }

  if (!all_excluded || chosen_blocks.size() >= num_blocks) {
    // Partial reveal cannot strictly beat every bound (e.g., exact ties),
    // or would reveal everything anyway: fall back to the full vector.
    reveal.full = true;
    reveal.coords.assign(coords, coords + dims);
    return reveal;
  }

  std::sort(chosen_blocks.begin(), chosen_blocks.end());
  reveal.full = false;
  for (uint32_t blk : chosen_blocks) {
    size_t begin = static_cast<size_t>(blk) * kDimBlock;
    size_t end = std::min(dims, begin + kDimBlock);
    for (size_t d = begin; d < end; ++d) {
      reveal.dim_indices.push_back(static_cast<uint32_t>(d));
      reveal.dim_values.push_back(coords[d]);
    }
  }
  if (memo) {
    reveal.proof = memo->Get(id, coords, dims).ProveSubset(chosen_blocks);
  } else {
    merkle::MerkleTree tree(BlockLeaves(coords, dims));
    reveal.proof = tree.ProveSubset(chosen_blocks);
  }
  return reveal;
}

Status VerifyReveal(RevealMode mode, size_t dims, const ClusterReveal& reveal,
                    Digest* commitment_out) {
  if (reveal.full) {
    if (reveal.coords.size() != dims) {
      return Status::Error("reveal: wrong coordinate count");
    }
    *commitment_out =
        ClusterCommitment(mode, reveal.id, reveal.coords.data(), dims);
    return Status::Ok();
  }
  if (mode != RevealMode::kDimMerkle) {
    return Status::Error("reveal: partial reveal in full-vector mode");
  }
  if (reveal.dim_indices.size() != reveal.dim_values.size() ||
      reveal.dim_indices.empty()) {
    return Status::Error("reveal: malformed partial reveal");
  }
  // Revealed dimensions must form complete, strictly increasing blocks.
  std::vector<uint32_t> block_indices;
  std::vector<Bytes> payloads;
  const size_t num_blocks = NumBlocks(dims);
  size_t i = 0;
  while (i < reveal.dim_indices.size()) {
    uint32_t d0 = reveal.dim_indices[i];
    if (d0 % kDimBlock != 0) {
      return Status::Error("reveal: partial reveal not block-aligned");
    }
    uint32_t blk = d0 / kDimBlock;
    if (!block_indices.empty() && blk <= block_indices.back()) {
      return Status::Error("reveal: blocks out of order");
    }
    size_t block_len = std::min<size_t>(kDimBlock, dims - d0);
    if (i + block_len > reveal.dim_indices.size()) {
      return Status::Error("reveal: incomplete block");
    }
    ByteWriter w;
    for (size_t j = 0; j < block_len; ++j) {
      if (reveal.dim_indices[i + j] != d0 + j) {
        return Status::Error("reveal: incomplete block");
      }
      w.PutF32(reveal.dim_values[i + j]);
    }
    block_indices.push_back(blk);
    payloads.push_back(w.Take());
    i += block_len;
  }

  Digest root;
  Status s = merkle::ReconstructSubsetRoot(num_blocks, block_indices, payloads,
                                           reveal.proof, &root);
  if (!s.ok()) return s;
  crypto::DigestBuilder b;
  b.AddU8(static_cast<uint8_t>(mode));
  b.AddU32(reveal.id);
  b.AddU32(static_cast<uint32_t>(dims));
  b.AddDigest(root);
  *commitment_out = b.Finalize();
  return Status::Ok();
}

void SerializeReveals(const std::vector<ClusterReveal>& reveals, ByteWriter& w) {
  w.PutVarint(reveals.size());
  for (const ClusterReveal& r : reveals) {
    w.PutVarint(r.id);
    w.PutU8(r.full ? 1 : 0);
    if (r.full) {
      for (float v : r.coords) w.PutF32(v);
    } else {
      w.PutVarint(r.dim_indices.size());
      for (size_t i = 0; i < r.dim_indices.size(); ++i) {
        w.PutVarint(r.dim_indices[i]);
        w.PutF32(r.dim_values[i]);
      }
      w.PutVarint(r.proof.size());
      for (const Digest& d : r.proof) crypto::PutDigest(w, d);
    }
  }
}

Status DeserializeReveals(ByteReader& r, size_t dims,
                          std::vector<ClusterReveal>* out) {
  uint64_t count;
  Status s = r.GetVarint(&count);
  if (!s.ok()) return s;
  // Each reveal needs at least 3 bytes (id + flag + payload byte).
  if (count > r.remaining() / 3) {
    return Status::Error("reveal: count exceeds input size");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ClusterReveal rev;
    uint64_t id;
    if (!(s = r.GetVarint(&id)).ok()) return s;
    rev.id = static_cast<ClusterId>(id);
    uint8_t full = 0;
    if (!(s = r.GetU8(&full)).ok()) return s;
    rev.full = full != 0;
    if (rev.full) {
      rev.coords.resize(dims);
      for (size_t d = 0; d < dims; ++d) {
        if (!(s = r.GetF32(&rev.coords[d])).ok()) return s;
      }
    } else {
      uint64_t n;
      if (!(s = r.GetVarint(&n)).ok()) return s;
      if (n == 0 || n > dims) return Status::Error("reveal: bad dim count");
      rev.dim_indices.resize(n);
      rev.dim_values.resize(n);
      for (uint64_t j = 0; j < n; ++j) {
        uint64_t d;
        if (!(s = r.GetVarint(&d)).ok()) return s;
        if (d >= dims) return Status::Error("reveal: dim index out of range");
        rev.dim_indices[j] = static_cast<uint32_t>(d);
        if (!(s = r.GetF32(&rev.dim_values[j])).ok()) return s;
      }
      uint64_t proof_len;
      if (!(s = r.GetVarint(&proof_len)).ok()) return s;
      if (proof_len > dims + 64) return Status::Error("reveal: proof too long");
      rev.proof.resize(proof_len);
      for (uint64_t j = 0; j < proof_len; ++j) {
        if (!(s = crypto::GetDigest(r, &rev.proof[j])).ok()) return s;
      }
    }
    out->push_back(std::move(rev));
  }
  return Status::Ok();
}

}  // namespace imageproof::mrkd
