// MRKDSearch (Algorithm 1): authenticated range search over the MRKD-tree
// for all query feature vectors in one traversal, sharing tree nodes.
//
// SP-side semantics: a query q_i is "active" at a node when the exact
// minimum distance from q_i to the node's region is <= its threshold t_i.
// A subtree with no active query is pruned and only its digest enters the
// VO; a reached leaf contributes every cluster it stores to the candidate
// set of each active query. The client replays the identical recursion
// (mrkd/verify.h), so activity decisions are bit-reproducible.
//
// The VO is a preorder token stream:
//   kPruned   digest(32B)
//   kLeaf     varint count, then per entry: varint cluster_id, digest(32B)
//             of the cluster's Merkle inverted list
//   kInternal varint split_dim, f32 split_value, then left and right
//             token streams
//
// Cluster coordinates are *not* in the stream; they travel once, globally,
// in the candidate-reveal section (mrkd/commit.h) — the paper's shared
// candidate strategy.
//
// Thread safety: both search entry points take the tree by const reference
// and keep ALL traversal state (the recursion context, offset vectors, VO
// writer, candidate sets) in per-call locals or in the caller-owned
// MrkdSearchScratch — no statics, no caches, no mutable members. Any number
// of searches may therefore run concurrently over one MrkdTree (one scratch
// per concurrent caller), across queries and across trees, provided no one
// mutates the tree (MrkdTree::RefreshListDigest) meanwhile. The query
// engine (core/query_engine.h) guarantees that by serving every query from
// an immutable package snapshot.

#ifndef IMAGEPROOF_MRKD_SEARCH_H_
#define IMAGEPROOF_MRKD_SEARCH_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "mrkd/mrkd_tree.h"

namespace imageproof::mrkd {

inline constexpr uint8_t kTokenPruned = 0;
inline constexpr uint8_t kTokenLeaf = 1;
inline constexpr uint8_t kTokenInternal = 2;

struct MrkdSearchStats {
  size_t traversed_nodes = 0;  // nodes with at least one active query
  size_t shared_nodes = 0;     // nodes with two or more active queries
  size_t pruned_subtrees = 0;

  double ShareRatio() const {
    return traversed_nodes == 0
               ? 0.0
               : static_cast<double>(shared_nodes) / traversed_nodes;
  }
};

struct TreeSearchOutput {
  Bytes vo;
  // candidates[i] = clusters of every leaf where query i was active.
  std::vector<std::vector<ClusterId>> candidates;
  MrkdSearchStats stats;
};

// Reusable traversal state: one Frame per recursion depth holding the
// active-set partition buffers the traversal previously allocated fresh at
// every internal node (six vectors per node visit). Frames live in a deque
// so references stay stable while deeper levels are appended; buffers only
// grow, so a warm scratch makes the traversal itself allocation-free (VO
// bytes and candidate output still allocate — they are returned to the
// caller). One scratch per (caller, concurrent search): not thread-safe.
struct MrkdSearchScratch {
  struct Frame {
    std::vector<uint32_t> left_active, right_active;
    std::vector<double> left_mindist, right_mindist;
    // (query, saved offset) pairs to restore after each child.
    std::vector<std::pair<uint32_t, double>> left_saved, right_saved;
  };
  std::deque<Frame> frames;                  // indexed by depth
  std::vector<std::vector<double>> offsets;  // [query][dim]
  std::vector<uint32_t> initial_active;
  std::vector<double> initial_mindist;
};

class LeafProofMemo;  // memo.h — per-snapshot leaf token byte cache

// Shared-node MRKDSearch (the paper's scheme). `thresholds_sq` are squared
// distances, one per query. `scratch` (optional) is reused across calls;
// `leaf_memo` (optional) serves memoized leaf token bytes shared across
// concurrent searches of the same frozen tree. Output is byte-identical
// with or without either.
TreeSearchOutput MrkdSearchShared(const MrkdTree& tree,
                                  const std::vector<const float*>& queries,
                                  const std::vector<double>& thresholds_sq,
                                  MrkdSearchScratch* scratch = nullptr,
                                  const LeafProofMemo* leaf_memo = nullptr);

// Baseline variant without node sharing: one independent traversal (and VO
// stream) per query, concatenated. Candidate semantics are identical.
TreeSearchOutput MrkdSearchUnshared(const MrkdTree& tree,
                                    const std::vector<const float*>& queries,
                                    const std::vector<double>& thresholds_sq,
                                    MrkdSearchScratch* scratch = nullptr,
                                    const LeafProofMemo* leaf_memo = nullptr);

}  // namespace imageproof::mrkd

#endif  // IMAGEPROOF_MRKD_SEARCH_H_
