// Merkle randomized k-d tree (Section IV-A) — the first ADS of ImageProof.
//
// Decorates an ann::RkdTree built over the codebook with digests:
//   internal node  h_N = h(l_N | h_left | h_right)            (Definition 2)
//   leaf node      h_N = h(ccommit_1 | h_G1 | ... )           (Definition 3)
// where l_N is the canonical encoding of the splitting hyperplane, ccommit_i
// is the cluster commitment (mrkd/commit.h), and h_Gi is the digest of the
// cluster's Merkle inverted list — which is how the MRKD-tree is linked to
// the second ADS.
//
// Thread safety: every const accessor is safe to call concurrently; the
// search code (mrkd/search.h) reads only through them. The single mutator
// is RefreshListDigest (plus the shared `list_digests` vector it reads,
// owned by SpPackage), used by the incremental-update path; it must never
// run concurrently with searches over the same tree. Concurrent serving
// therefore applies updates to a cloned package and swaps snapshots
// (core/query_engine.h) instead of mutating a live one.

#ifndef IMAGEPROOF_MRKD_MRKD_TREE_H_
#define IMAGEPROOF_MRKD_MRKD_TREE_H_

#include <vector>

#include "ann/rkd_tree.h"
#include "crypto/digest.h"
#include "crypto/hasher.h"
#include "mrkd/commit.h"

namespace imageproof::mrkd {

class MrkdTree {
 public:
  // `tree` is borrowed and must outlive the MrkdTree. `list_digests[c]` is
  // the digest h_{Gamma_c} of cluster c's Merkle inverted list.
  MrkdTree(const ann::RkdTree* tree, RevealMode mode,
           const std::vector<Digest>& list_digests);

  const ann::RkdTree& tree() const { return *tree_; }
  RevealMode mode() const { return mode_; }
  const Digest& root_digest() const { return node_digests_[tree_->root()]; }
  const Digest& node_digest(int node) const { return node_digests_[node]; }
  const Digest& list_digest(ClusterId c) const { return (*list_digests_)[c]; }
  const Digest& cluster_commitment(ClusterId c) const {
    return cluster_commitments_[c];
  }

  // Digest contribution of a splitting hyperplane (shared with the client's
  // replay, which reconstructs internal digests from VO tokens).
  static void HashInternal(crypto::DigestBuilder& b, uint32_t split_dim,
                           float split_value, const Digest& left,
                           const Digest& right);

  // Incremental refresh after cluster c's inverted-list digest changed in
  // the shared list-digest vector: recomputes the digest of c's leaf and of
  // every ancestor up to the root — O(log n_C) hashes instead of a full
  // rebuild. Returns the number of nodes rehashed.
  size_t RefreshListDigest(ClusterId c);

 private:
  // Full build: groups nodes by depth and digests each level through the
  // batch API, deepest level first (children before parents).
  void BuildNodeDigests();
  Digest RecomputeLocalDigest(int node);  // from children/leaf content only
  void BuildParentsAndLeafMap();

  const ann::RkdTree* tree_;
  RevealMode mode_;
  const std::vector<Digest>* list_digests_;
  std::vector<Digest> cluster_commitments_;
  std::vector<Digest> node_digests_;
  std::vector<int32_t> parents_;       // parent node index, -1 for the root
  std::vector<int32_t> leaf_of_;       // cluster -> leaf node index
};

}  // namespace imageproof::mrkd

#endif  // IMAGEPROOF_MRKD_MRKD_TREE_H_
