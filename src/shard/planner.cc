#include "shard/planner.h"

#include <filesystem>

#include "common/random.h"

namespace imageproof::shard {

ShardedDeployment ShardPlanner::Build(
    const core::Config& config, const ann::PointSet& codebook,
    const std::vector<std::pair<bovw::ImageId, bovw::BovwVector>>& corpus,
    const std::unordered_map<bovw::ImageId, Bytes>& image_data,
    uint32_t num_shards, uint64_t key_seed) {
  if (num_shards == 0) num_shards = 1;

  ShardedDeployment out;

  // One keypair for the whole deployment (see header comment).
  Rng key_rng(key_seed);
  out.keys = crypto::RsaKeyPair::Generate(config.rsa_bits, key_rng);

  // Freeze idf weights over the FULL corpus, before partitioning — the
  // load-bearing step for cross-layout byte identity.
  std::vector<bovw::BovwVector> all_vecs;
  all_vecs.reserve(corpus.size());
  for (const auto& [id, v] : corpus) all_vecs.push_back(v);
  bovw::ClusterWeights weights =
      bovw::ClusterWeights::FromCorpus(codebook.size(), all_vecs);

  // Partition by the fixed rule; slices preserve the input's id order.
  std::vector<std::vector<std::pair<bovw::ImageId, bovw::BovwVector>>> slices(
      num_shards);
  std::vector<std::unordered_map<bovw::ImageId, Bytes>> slice_images(
      num_shards);
  for (const auto& entry : corpus) {
    const uint32_t sid = ShardManifest::ShardOf(entry.first, num_shards);
    slices[sid].push_back(entry);
    auto it = image_data.find(entry.first);
    if (it != image_data.end()) slice_images[sid][it->first] = it->second;
  }

  core::BuildOverrides overrides;
  overrides.weights = &weights;
  overrides.keys = &out.keys;
  out.shards.reserve(num_shards);
  for (uint32_t sid = 0; sid < num_shards; ++sid) {
    out.shards.push_back(core::BuildDeployment(
        config, codebook, std::move(slices[sid]),
        std::move(slice_images[sid]), key_seed, overrides));
  }

  out.manifest.num_shards = num_shards;
  out.manifest.epoch = 0;
  out.manifest.shards.resize(num_shards);
  for (uint32_t sid = 0; sid < num_shards; ++sid) {
    ShardRoots& roots = out.manifest.shards[sid];
    roots.current = out.shards[sid].package->RootDigest();
    roots.current_signature = out.shards[sid].public_params.root_signature;
  }
  out.manifest.Sign(out.keys.private_key);
  return out;
}

std::string ShardDirName(uint32_t shard_id) {
  return "shard-" + std::to_string(shard_id);
}

Status WriteShardedDeployment(const std::string& dir,
                              const ShardedDeployment& deployment,
                              const storage::WriteOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Error("shard: cannot create " + dir);
  for (uint32_t sid = 0; sid < deployment.manifest.num_shards; ++sid) {
    const std::string shard_dir = dir + "/" + ShardDirName(sid);
    std::filesystem::create_directories(shard_dir, ec);
    if (ec) return Status::Error("shard: cannot create " + shard_dir);
    Result<std::string> path = storage::PackageStore::WriteEpoch(
        shard_dir, 0, *deployment.shards[sid].package, options);
    if (!path.ok()) return path.status();
    if (Status s = storage::PackageStore::SetCurrentEpoch(shard_dir, 0);
        !s.ok()) {
      return s;
    }
  }
  // Last, so a manifest on disk always names complete shard directories.
  return SaveManifest(dir + "/MANIFEST", deployment.manifest);
}

Result<OpenedShardedDeployment> OpenShardedDeployment(
    const std::string& dir, const core::PublicParams& base_params) {
  Result<ShardManifest> manifest = LoadManifest(dir + "/MANIFEST");
  if (!manifest.ok()) return manifest.status();
  if (!manifest->VerifySignature(base_params.public_key)) {
    return Status::Corrupted("shard: manifest signature verification failed");
  }

  OpenedShardedDeployment out;
  out.manifest = std::move(*manifest);
  out.shards.resize(out.manifest.num_shards);
  for (uint32_t sid = 0; sid < out.manifest.num_shards; ++sid) {
    OpenedShard& shard = out.shards[sid];
    shard.params = base_params;
    shard.params.root_signature = out.manifest.shards[sid].current_signature;
    storage::OpenOptions open_opts;
    open_opts.params = &shard.params;
    auto pkg = storage::PackageStore::OpenCurrent(
        dir + "/" + ShardDirName(sid), open_opts, &shard.epoch);
    if (!pkg.ok()) return pkg.status();
    shard.package = std::move(*pkg);
  }
  return out;
}

}  // namespace imageproof::shard
