#include "shard/composite.h"

#include "shard/manifest.h"

namespace imageproof::shard {

namespace {
constexpr uint32_t kCompositeMagic = 0x4950434F;  // "OCPI" on the wire
}  // namespace

Bytes CompositeVO::Serialize() const {
  ByteWriter w;
  w.PutU32(kCompositeMagic);
  w.PutBlob(manifest_bytes);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const CompositeEntry& e : entries) {
    w.PutU32(e.shard_id);
    w.PutU64(e.snapshot_version);
    w.PutBlob(e.root_signature);
    w.PutBlob(e.vo_bytes);
  }
  return w.Take();
}

Status CompositeVO::Deserialize(const Bytes& data, CompositeVO* out) {
  ByteReader r(data);
  Status s;
  uint32_t magic = 0;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kCompositeMagic) {
    return Status::Corrupted("composite vo: bad magic");
  }
  if (!(s = r.GetBlob(&out->manifest_bytes)).ok()) return s;
  uint32_t count = 0;
  if (!(s = r.GetU32(&count)).ok()) return s;
  if (count == 0) return Status::Corrupted("composite vo: zero entries");
  if (count > kMaxShards) {
    return Status::Corrupted("composite vo: absurd entry count");
  }
  // Each entry occupies at least its fixed header (4 + 8 bytes) plus two
  // blob length prefixes; cap the allocation by what is actually present.
  if (count > r.remaining() / 12) {
    return Status::Corrupted("composite vo: entry count exceeds input size");
  }
  out->entries.clear();
  out->entries.resize(count);
  for (CompositeEntry& e : out->entries) {
    if (!(s = r.GetU32(&e.shard_id)).ok()) return s;
    if (!(s = r.GetU64(&e.snapshot_version)).ok()) return s;
    if (!(s = r.GetBlob(&e.root_signature)).ok()) return s;
    if (!(s = r.GetBlob(&e.vo_bytes)).ok()) return s;
  }
  if (!r.AtEnd()) return Status::Corrupted("composite vo: trailing bytes");
  return Status::Ok();
}

}  // namespace imageproof::shard
