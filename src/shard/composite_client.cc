#include "shard/composite_client.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/vo.h"

namespace imageproof::shard {

namespace {

Status Unsound(uint32_t shard_id, const std::string& what) {
  return Status::Error("composite verify: shard " + std::to_string(shard_id) +
                       ": " + what);
}

}  // namespace

Result<CompositeVerifiedResults> CompositeClient::VerifyComposite(
    const std::vector<std::vector<float>>& features, size_t k,
    const Bytes& composite_bytes) const {
  CompositeVO vo;
  if (Status s = CompositeVO::Deserialize(composite_bytes, &vo); !s.ok()) {
    return s;
  }

  // 1. Manifest authenticity.
  ShardManifest manifest;
  if (Status s = ShardManifest::Deserialize(vo.manifest_bytes, &manifest);
      !s.ok()) {
    return s;
  }
  if (!manifest.VerifySignature(params_.public_key)) {
    return Status::Error(
        "composite verify: manifest signature verification failed");
  }

  // 2. Coverage: one entry per shard, in slot order.
  if (vo.entries.size() != manifest.num_shards) {
    return Status::Error(
        "composite verify: entry count " +
        std::to_string(vo.entries.size()) + " != manifest shard count " +
        std::to_string(manifest.num_shards) + " (dropped or extra shard)");
  }
  for (uint32_t sid = 0; sid < manifest.num_shards; ++sid) {
    if (vo.entries[sid].shard_id != sid) {
      return Unsound(sid, "entry claims shard " +
                              std::to_string(vo.entries[sid].shard_id) +
                              " (reordered or duplicated slot)");
    }
  }

  CompositeVerifiedResults out;
  out.manifest_epoch = manifest.epoch;
  out.num_shards = manifest.num_shards;
  out.per_shard.reserve(manifest.num_shards);

  // 3-5. Per-shard verification, pinned to the manifest.
  for (uint32_t sid = 0; sid < manifest.num_shards; ++sid) {
    const CompositeEntry& entry = vo.entries[sid];
    core::QueryVO shard_vo;
    if (Status s = core::QueryVO::Deserialize(entry.vo_bytes, &shard_vo);
        !s.ok()) {
      return s;
    }
    core::PublicParams shard_params = params_;
    shard_params.root_signature = entry.root_signature;
    core::Client verifier(std::move(shard_params));
    auto verified = verifier.Verify(features, k, shard_vo);
    if (!verified.ok()) {
      const Status& s = verified.status();
      return Status::WithCode(s.code(), "composite verify: shard " +
                                            std::to_string(sid) + ": " +
                                            s.message());
    }
    core::VerifiedResults& vr = *verified;
    if (!manifest.shards[sid].Allows(vr.root_digest)) {
      return Unsound(sid,
                     "replayed root is not in the manifest's digest set "
                     "(stale epoch or spliced shard response)");
    }
    if (!vr.topk_scores_exact) {
      return Unsound(sid, "scores are lower bounds, not provably exact");
    }
    for (const bovw::ScoredImage& r : vr.topk) {
      if (ShardManifest::ShardOf(r.id, manifest.num_shards) != sid) {
        return Unsound(sid, "result id " + std::to_string(r.id) +
                                " violates the id-mod partition");
      }
    }
    out.per_shard.push_back(std::move(vr));
  }

  // 6. The merge, recomputed from verified exact scores. Completeness: a
  // global top-k member is in its shard's local top-k (same k), and every
  // shard's local top-k was just proven; the partition check above rules
  // out one image appearing under two shards.
  struct Slot {
    uint32_t shard;
    size_t index;
  };
  std::vector<std::pair<bovw::ScoredImage, Slot>> all;
  for (uint32_t sid = 0; sid < manifest.num_shards; ++sid) {
    const core::VerifiedResults& vr = out.per_shard[sid];
    for (size_t i = 0; i < vr.topk.size(); ++i) {
      all.push_back({vr.topk[i], Slot{sid, i}});
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first.score != b.first.score) return a.first.score > b.first.score;
    return a.first.id < b.first.id;
  });
  const size_t take = std::min(k, all.size());
  out.topk.reserve(take);
  out.images.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.topk.push_back(all[i].first);
    out.images.push_back(
        out.per_shard[all[i].second.shard].images[all[i].second.index]);
  }
  return out;
}

}  // namespace imageproof::shard
