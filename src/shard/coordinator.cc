#include "shard/coordinator.h"

#include <utility>

namespace imageproof::shard {

namespace {

Status AnnotateShard(uint32_t shard_id, const Status& s) {
  return Status::WithCode(
      s.code(), "shard " + std::to_string(shard_id) + ": " + s.message());
}

}  // namespace

// --- LocalShardBackend ------------------------------------------------------

LocalShardBackend::LocalShardBackend(
    std::shared_ptr<const core::SpPackage> package, core::PublicParams params,
    crypto::RsaPrivateKey owner_key, core::EngineOptions options)
    : owner_key_(std::move(owner_key)),
      engine_(std::move(package), std::move(params), std::move(options)) {}

Result<ShardQueryResult> LocalShardBackend::Query(
    const std::vector<std::vector<float>>& features, size_t k,
    bool compress_vo, uint32_t deadline_ms) {
  core::SubmitOptions opts;
  opts.deadline = std::chrono::milliseconds(deadline_ms);
  opts.compress_vo = compress_vo;
  opts.settle_exact_topk = true;
  core::EngineResponse r = engine_.Submit(features, k, opts).get();
  if (!r.ok()) return r.status;
  ShardQueryResult out;
  out.snapshot_version = r.snapshot->version;
  out.root_signature = r.snapshot->params.root_signature;
  out.vo_bytes = r.response.vo.Serialize();
  return out;
}

Result<ShardRootInfo> LocalShardBackend::Insert(bovw::ImageId id,
                                                bovw::BovwVector bovw,
                                                Bytes image_data) {
  auto applied = engine_.InsertImage(owner_key_, id, std::move(bovw),
                                     std::move(image_data));
  if (!applied.ok()) return applied.status();
  std::shared_ptr<const core::Snapshot> snap = engine_.CurrentSnapshot();
  ShardRootInfo info;
  info.root = snap->package->RootDigest();
  info.signature = snap->params.root_signature;
  return info;
}

Result<ShardRootInfo> LocalShardBackend::Delete(bovw::ImageId id) {
  auto applied = engine_.DeleteImage(owner_key_, id);
  if (!applied.ok()) return applied.status();
  std::shared_ptr<const core::Snapshot> snap = engine_.CurrentSnapshot();
  ShardRootInfo info;
  info.root = snap->package->RootDigest();
  info.signature = snap->params.root_signature;
  return info;
}

Status LocalShardBackend::Probe() {
  return engine_.stopped() ? Status::Unavailable("shard engine stopped")
                           : Status::Ok();
}

// --- RemoteShardBackend -----------------------------------------------------

RemoteShardBackend::RemoteShardBackend(std::string host, uint16_t port,
                                       core::PublicParams trusted_params,
                                       net::RetryPolicy policy)
    : client_(std::move(host), port, std::move(trusted_params), policy) {}

Result<ShardQueryResult> RemoteShardBackend::Query(
    const std::vector<std::vector<float>>& features, size_t k,
    bool compress_vo, uint32_t deadline_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  client_.set_compress_vo(compress_vo);
  Result<net::ResponseFrame> resp =
      client_.QueryForRelay(features, k, deadline_ms);
  if (!resp.ok()) return resp.status();
  ShardQueryResult out;
  out.snapshot_version = resp->snapshot_version;
  out.root_signature = std::move(resp->root_signature);
  out.vo_bytes = std::move(resp->vo_bytes);
  return out;
}

Result<ShardRootInfo> RemoteShardBackend::Insert(bovw::ImageId, bovw::BovwVector,
                                                 Bytes) {
  return Status::Error(
      "remote shard backend: updates are applied owner-side, not relayed");
}

Result<ShardRootInfo> RemoteShardBackend::Delete(bovw::ImageId) {
  return Status::Error(
      "remote shard backend: updates are applied owner-side, not relayed");
}

Status RemoteShardBackend::Probe() {
  std::lock_guard<std::mutex> lock(mu_);
  return client_.Probe();
}

// --- Coordinator ------------------------------------------------------------

Coordinator::Coordinator(std::vector<std::unique_ptr<ShardBackend>> backends,
                         ShardManifest manifest,
                         crypto::RsaPrivateKey owner_key,
                         CoordinatorOptions options)
    : backends_(std::move(backends)),
      num_shards_(manifest.num_shards),
      owner_key_(std::move(owner_key)),
      options_(options),
      manifest_(std::make_shared<const ShardManifest>(std::move(manifest))),
      fanout_pool_(options.fanout_threads != 0 ? options.fanout_threads
                                               : num_shards_),
      serve_pool_(options.serve_threads) {}

Coordinator::~Coordinator() {
  // Outer tasks block on fan-out futures; drain them first so no serve task
  // is left waiting on a pool that is already gone.
  serve_pool_.Shutdown();
  fanout_pool_.Shutdown();
}

std::shared_ptr<const ShardManifest> Coordinator::CurrentManifest() const {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return manifest_;
}

Result<Bytes> Coordinator::Query(
    const std::vector<std::vector<float>>& features, size_t k,
    bool compress_vo, uint32_t deadline_ms) {
  std::vector<std::future<Result<ShardQueryResult>>> futures;
  futures.reserve(num_shards_);
  for (uint32_t sid = 0; sid < num_shards_; ++sid) {
    ShardBackend* backend = backends_[sid].get();
    futures.push_back(
        fanout_pool_.Submit([backend, &features, k, compress_vo, deadline_ms] {
          return backend->Query(features, k, compress_vo, deadline_ms);
        }));
  }
  // Gather everything before acting on failures: every future must be
  // drained regardless (the tasks borrow `features`).
  std::vector<Result<ShardQueryResult>> replies;
  replies.reserve(num_shards_);
  for (auto& f : futures) replies.push_back(f.get());
  for (uint32_t sid = 0; sid < num_shards_; ++sid) {
    if (!replies[sid].ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.fanout_failures;
      return AnnotateShard(sid, replies[sid].status());
    }
  }

  // Pin the manifest AFTER the fan-out: a shard that epoch-swapped once
  // while we were gathering shows up as this manifest's prev for its slot.
  std::shared_ptr<const ShardManifest> manifest = CurrentManifest();
  CompositeVO vo;
  vo.manifest_bytes = manifest->Serialize();
  vo.entries.resize(num_shards_);
  for (uint32_t sid = 0; sid < num_shards_; ++sid) {
    ShardQueryResult& reply = *replies[sid];
    const ShardRoots& roots = manifest->shards[sid];
    const bool known = reply.root_signature == roots.current_signature ||
                       (roots.has_prev &&
                        reply.root_signature == roots.prev_signature);
    if (!known) {
      // Two swaps of one shard inside a single fan-out window. Nobody
      // misbehaved; the composite just cannot be assembled consistently.
      // kUnavailable is retryable — crucially NOT a verification failure.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.manifest_races;
      return Status::Unavailable(
          "shard " + std::to_string(sid) +
          ": root swapped twice during fan-out; retry the query");
    }
    CompositeEntry& entry = vo.entries[sid];
    entry.shard_id = sid;
    entry.snapshot_version = reply.snapshot_version;
    entry.root_signature = std::move(reply.root_signature);
    entry.vo_bytes = std::move(reply.vo_bytes);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.queries;
  }
  return vo.Serialize();
}

void Coordinator::QueryAsync(std::vector<std::vector<float>> features,
                             size_t k, bool compress_vo, uint32_t deadline_ms,
                             std::function<void(Result<Bytes>)> done) {
  serve_pool_.Submit([this, features = std::move(features), k, compress_vo,
                      deadline_ms, done = std::move(done)]() mutable {
    done(Query(features, k, compress_vo, deadline_ms));
  });
}

Result<uint64_t> Coordinator::PublishRoot(uint32_t shard_id,
                                          const ShardRootInfo& info) {
  std::shared_ptr<const ShardManifest> cur = CurrentManifest();
  auto next = std::make_shared<ShardManifest>(*cur);
  ShardRoots& roots = next->shards[shard_id];
  if (!(info.root == roots.current)) {
    roots.prev = roots.current;
    roots.prev_signature = roots.current_signature;
    roots.has_prev = true;
    roots.current = info.root;
    roots.current_signature = info.signature;
  }
  next->epoch = cur->epoch + 1;
  next->Sign(owner_key_);
  {
    std::lock_guard<std::mutex> lock(manifest_mu_);
    manifest_ = next;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.updates;
  }
  return next->epoch;
}

Result<uint64_t> Coordinator::Insert(bovw::ImageId id, bovw::BovwVector bovw,
                                     Bytes image_data) {
  std::lock_guard<std::mutex> lock(update_mu_);
  const uint32_t sid = ShardManifest::ShardOf(id, num_shards_);
  auto info =
      backends_[sid]->Insert(id, std::move(bovw), std::move(image_data));
  if (!info.ok()) return AnnotateShard(sid, info.status());
  return PublishRoot(sid, *info);
}

Result<uint64_t> Coordinator::Delete(bovw::ImageId id) {
  std::lock_guard<std::mutex> lock(update_mu_);
  const uint32_t sid = ShardManifest::ShardOf(id, num_shards_);
  auto info = backends_[sid]->Delete(id);
  if (!info.ok()) return AnnotateShard(sid, info.status());
  return PublishRoot(sid, *info);
}

Status Coordinator::ProbeAll() {
  for (uint32_t sid = 0; sid < num_shards_; ++sid) {
    if (Status s = backends_[sid]->Probe(); !s.ok()) {
      return AnnotateShard(sid, s);
    }
  }
  return Status::Ok();
}

CoordinatorStats Coordinator::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace imageproof::shard
