// ShardPlanner: partitions one corpus into N independent ImageProof
// deployments that are mutually composable.
//
// Sharding only helps if the merged answer is indistinguishable from the
// unsharded one — byte-identical scores, one public key, one verification
// story. Two build-time choices make that hold:
//
//   * idf weights are frozen from the FULL corpus (ClusterWeights::
//     FromCorpus over all N shards' vectors) and injected into every
//     shard's build, so an image's impact vector — and therefore its exact
//     similarity score — does not depend on which shard it landed in;
//   * one owner keypair signs everything: all shard roots, all image
//     signatures, and the shard manifest verify under a single public key.
//
// The partition is shard(id) = id mod num_shards (ShardManifest::ShardOf):
// stateless, so a verifier can check result placement without any lookup
// table, and uniform for the synthetic/SIFT workloads whose ids are dense.
//
// Persistence mirrors the unsharded epoch-directory protocol, per shard:
//
//   dir/MANIFEST            signed ShardManifest (AtomicWriteFile)
//   dir/shard-0/pkg-0.ipk   shard 0, epoch 0 (storage::PackageStore)
//   dir/shard-0/CURRENT
//   dir/shard-1/...
//
// so each shard epoch-swaps independently (one shard can update under load
// while the others keep serving) and the manifest re-sign is the only
// cross-shard coordination point.

#ifndef IMAGEPROOF_SHARD_PLANNER_H_
#define IMAGEPROOF_SHARD_PLANNER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/owner.h"
#include "shard/manifest.h"
#include "storage/package_store.h"

namespace imageproof::shard {

// A freshly built sharded deployment: one OwnerOutput per shard (index ==
// shard id), the signed manifest at epoch 0, and the shared owner keypair
// (retained coordinator-side for update re-signing; never shipped to SPs).
struct ShardedDeployment {
  std::vector<core::OwnerOutput> shards;
  ShardManifest manifest;
  crypto::RsaKeyPair keys;
};

class ShardPlanner {
 public:
  // Builds num_shards deployments over the id-mod partition of `corpus` /
  // `image_data`, with frozen global weights and a shared keypair (see the
  // header comment). `key_seed` as in core::BuildDeployment. An id in
  // image_data without a corpus entry is dropped with its shard's slice.
  static ShardedDeployment Build(
      const core::Config& config, const ann::PointSet& codebook,
      const std::vector<std::pair<bovw::ImageId, bovw::BovwVector>>& corpus,
      const std::unordered_map<bovw::ImageId, Bytes>& image_data,
      uint32_t num_shards, uint64_t key_seed = 0x5E5);
};

// "shard-<id>" — the per-shard epoch directory name under a deployment root.
std::string ShardDirName(uint32_t shard_id);

// Writes dir/MANIFEST plus one epoch directory per shard (epoch 0 package +
// CURRENT pointer), creating directories as needed. Crash-safe per file;
// the manifest is written last, so a torn deployment write leaves no
// manifest naming incomplete shards.
Status WriteShardedDeployment(const std::string& dir,
                              const ShardedDeployment& deployment,
                              const storage::WriteOptions& options = {});

// One shard reopened from disk: the mapped package, the PublicParams it
// verifies under (base params + this shard's manifest signature), and the
// epoch CURRENT named.
struct OpenedShard {
  std::unique_ptr<core::SpPackage> package;
  core::PublicParams params;
  uint64_t epoch = 0;
};

struct OpenedShardedDeployment {
  ShardManifest manifest;
  std::vector<OpenedShard> shards;  // index == shard id
};

// Reopens a WriteShardedDeployment directory. `base_params` supplies the
// config/public key/dims (its root_signature member is ignored); each
// shard's own root signature comes from the manifest, and every package
// open verifies against it. The manifest signature itself is checked
// before any shard is touched.
Result<OpenedShardedDeployment> OpenShardedDeployment(
    const std::string& dir, const core::PublicParams& base_params);

}  // namespace imageproof::shard

#endif  // IMAGEPROOF_SHARD_PLANNER_H_
