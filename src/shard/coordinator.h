// Coordinator: parallel scatter-gather over N shard backends with an
// authenticated merge.
//
// A query fans out to every shard on the coordinator's fan-out pool, each
// shard answering a settled (exact-score) local top-k with an ordinary
// QueryVO, and the replies are bundled into a composite VO
// (shard/composite.h) together with the current signed manifest. The
// coordinator never verifies and never merges — it is part of the
// untrusted SP; the client's VerifyComposite (shard/composite_client.h)
// recomputes the merge from per-shard proofs.
//
// Manifest pinning vs. update races: the manifest to ship is chosen AFTER
// every shard reply is in, and each reply's root signature is checked
// against that manifest's {current, prev} entry for its slot. A shard that
// epoch-swapped once mid-fan-out still matches (its old root is the
// manifest's prev after the coordinator re-signed); only a shard that
// swapped TWICE during one fan-out misses, and that query fails
// kUnavailable — a retryable transient, deliberately distinct from a
// verification failure, which always means tampering.
//
// Update ordering (Insert/Delete): route to the owning shard backend →
// backend applies the engine update (clone/verify/swap) and reports the new
// root + signature → coordinator clones the manifest, shifts that slot's
// current to prev, installs the new root, bumps the epoch, re-signs, and
// atomically publishes the new manifest (shared_ptr swap). Queries pinning
// the old manifest still compose: the updated shard's new root is not in
// the old manifest, but such queries fanned out BEFORE the swap and carry
// the old root. Writers are serialized; one shard updating never blocks
// queries or the other shards.
//
// Thread-pool DAG (deadlock freedom): QueryAsync tasks run on the serve
// pool and block on fan-out futures, which run on the distinct fan-out
// pool; local backends' engine work runs on each engine's own pool. No
// task ever waits on a task of its own pool.

#ifndef IMAGEPROOF_SHARD_COORDINATOR_H_
#define IMAGEPROOF_SHARD_COORDINATOR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/query_engine.h"
#include "net/retry.h"
#include "shard/composite.h"
#include "shard/manifest.h"

namespace imageproof::shard {

// One shard's (unverified) answer: the serialized QueryVO, the root
// signature it replays to, and the snapshot version it was served from.
struct ShardQueryResult {
  uint64_t snapshot_version = 0;
  Bytes root_signature;
  Bytes vo_bytes;
};

// The root a shard settled on after applying an update.
struct ShardRootInfo {
  crypto::Digest root = crypto::Digest::Zero();
  Bytes signature;
};

// One shard as the coordinator sees it. Implementations must be safe for
// concurrent Query calls (the fan-out pool issues them in parallel);
// updates are serialized by the coordinator.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  // A settled (exact-score) authenticated query against this shard.
  // deadline_ms 0 = none.
  virtual Result<ShardQueryResult> Query(
      const std::vector<std::vector<float>>& features, size_t k,
      bool compress_vo, uint32_t deadline_ms) = 0;

  // Owner updates; the returned root info feeds the manifest re-sign.
  virtual Result<ShardRootInfo> Insert(bovw::ImageId id,
                                       bovw::BovwVector bovw,
                                       Bytes image_data) = 0;
  virtual Result<ShardRootInfo> Delete(bovw::ImageId id) = 0;

  // Health check; kOk means the shard is answering.
  virtual Status Probe() = 0;
};

// In-process shard: owns a QueryEngine over the shard's package. Queries
// always run settled (SubmitOptions::settle_exact_topk) — a shard behind a
// coordinator has no other mode.
class LocalShardBackend : public ShardBackend {
 public:
  LocalShardBackend(std::shared_ptr<const core::SpPackage> package,
                    core::PublicParams params,
                    crypto::RsaPrivateKey owner_key,
                    core::EngineOptions options = {});

  Result<ShardQueryResult> Query(
      const std::vector<std::vector<float>>& features, size_t k,
      bool compress_vo, uint32_t deadline_ms) override;
  Result<ShardRootInfo> Insert(bovw::ImageId id, bovw::BovwVector bovw,
                               Bytes image_data) override;
  Result<ShardRootInfo> Delete(bovw::ImageId id) override;
  Status Probe() override;

  core::QueryEngine& engine() { return engine_; }

 private:
  crypto::RsaPrivateKey owner_key_;
  core::QueryEngine engine_;
};

// Remote shard behind a net::NetServer (which must run with
// ServerOptions::settle_exact_topk). Queries relay unverified response
// frames via RetryingClient::QueryForRelay; Probe is the client's
// keepalive probe. Updates are not routed over the wire by this backend
// (kError) — remote-shard deployments apply updates owner-side where the
// key lives.
class RemoteShardBackend : public ShardBackend {
 public:
  RemoteShardBackend(std::string host, uint16_t port,
                     core::PublicParams trusted_params,
                     net::RetryPolicy policy = {});

  Result<ShardQueryResult> Query(
      const std::vector<std::vector<float>>& features, size_t k,
      bool compress_vo, uint32_t deadline_ms) override;
  Result<ShardRootInfo> Insert(bovw::ImageId id, bovw::BovwVector bovw,
                               Bytes image_data) override;
  Result<ShardRootInfo> Delete(bovw::ImageId id) override;
  Status Probe() override;

  const net::RetryStats& stats() const { return client_.stats(); }

 private:
  // RetryingClient owns one socket; concurrent composite queries hitting
  // the same remote shard serialize here.
  std::mutex mu_;
  net::RetryingClient client_;
};

struct CoordinatorOptions {
  unsigned fanout_threads = 0;  // per-shard query tasks; 0 = one per shard
  unsigned serve_threads = 2;   // outer QueryAsync tasks
};

struct CoordinatorStats {
  uint64_t queries = 0;          // composite queries completed OK
  uint64_t fanout_failures = 0;  // queries failed by a shard error
  uint64_t manifest_races = 0;   // kUnavailable from a double epoch swap
  uint64_t updates = 0;          // manifest re-signs published
};

class Coordinator {
 public:
  // `backends[i]` serves shard i; their count must equal
  // manifest.num_shards. `owner_key` re-signs the manifest on updates.
  Coordinator(std::vector<std::unique_ptr<ShardBackend>> backends,
              ShardManifest manifest, crypto::RsaPrivateKey owner_key,
              CoordinatorOptions options = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Scatter-gather: fans out, gathers, pins the manifest, and returns the
  // serialized CompositeVO. Blocking; safe for concurrent callers.
  Result<Bytes> Query(const std::vector<std::vector<float>>& features,
                      size_t k, bool compress_vo = false,
                      uint32_t deadline_ms = 0);

  // Non-blocking form matching net::NetServer::CompositeHandler: enqueues
  // the scatter-gather on the serve pool and invokes `done` exactly once
  // from a serve-pool thread.
  void QueryAsync(std::vector<std::vector<float>> features, size_t k,
                  bool compress_vo, uint32_t deadline_ms,
                  std::function<void(Result<Bytes>)> done);

  // Owner updates: routed to shard id mod num_shards, then the manifest is
  // re-signed and published. On success returns the new manifest epoch.
  // Serialized with each other; on failure the old manifest stays
  // published.
  Result<uint64_t> Insert(bovw::ImageId id, bovw::BovwVector bovw,
                          Bytes image_data);
  Result<uint64_t> Delete(bovw::ImageId id);

  // The manifest new queries will be pinned against.
  std::shared_ptr<const ShardManifest> CurrentManifest() const;

  // Probes every backend; returns the first failure (annotated with the
  // shard id) or kOk when all answer.
  Status ProbeAll();

  uint32_t num_shards() const { return num_shards_; }
  CoordinatorStats Stats() const;

 private:
  Result<ShardRootInfo> RouteUpdate(
      bovw::ImageId id,
      const std::function<Result<ShardRootInfo>(ShardBackend&)>& apply,
      uint32_t* shard_out);
  Result<uint64_t> PublishRoot(uint32_t shard_id, const ShardRootInfo& info);

  std::vector<std::unique_ptr<ShardBackend>> backends_;
  uint32_t num_shards_;
  crypto::RsaPrivateKey owner_key_;
  CoordinatorOptions options_;

  mutable std::mutex manifest_mu_;  // guards manifest_ swaps/reads
  std::shared_ptr<const ShardManifest> manifest_;
  std::mutex update_mu_;  // serializes writers end to end

  mutable std::mutex stats_mu_;
  CoordinatorStats stats_;

  ThreadPool fanout_pool_;
  ThreadPool serve_pool_;
};

}  // namespace imageproof::shard

#endif  // IMAGEPROOF_SHARD_COORDINATOR_H_
