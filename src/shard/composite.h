// Composite VO: the verifiable object of a sharded scatter-gather query.
//
// The coordinator fans a query across N shards, each of which answers with
// an ordinary ImageProof QueryVO proving its LOCAL top-k under its own
// signed root. The composite VO bundles those per-shard proofs with the
// owner-signed shard manifest that binds shard id -> root digest set, so a
// client can re-verify the whole scatter-gather:
//
//   * the manifest travels in-band (`manifest_bytes`). It is owner-signed,
//     so delivery through the untrusted SP/coordinator is safe — a swapped
//     or doctored manifest fails its signature check;
//   * one entry per shard, in shard-id order, no shard missing (entry i
//     must claim shard_id == i, and the entry count must equal the
//     manifest's num_shards) — so a coordinator cannot silently drop the
//     shard holding a better result;
//   * each entry carries the root signature its VO replays to, checked by
//     the verifier against the manifest's {current, prev} digest set for
//     that slot — so a (valid!) VO from shard 1 cannot be spliced into
//     shard 3's slot, and a stale epoch beyond the one-epoch freshness
//     window is rejected.
//
// The merge itself is not carried: it is recomputed by the verifier from
// the per-shard verified results (shard/composite_client.h), which is what
// makes it provable rather than claimed.

#ifndef IMAGEPROOF_SHARD_COMPOSITE_H_
#define IMAGEPROOF_SHARD_COMPOSITE_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace imageproof::shard {

// One shard's contribution: which slot it answers, the snapshot it served
// from, the owner signature over that snapshot's root digest, and the
// serialized core::QueryVO proving its local top-k.
struct CompositeEntry {
  uint32_t shard_id = 0;
  uint64_t snapshot_version = 0;
  Bytes root_signature;
  Bytes vo_bytes;
};

struct CompositeVO {
  Bytes manifest_bytes;  // serialized signed ShardManifest
  std::vector<CompositeEntry> entries;  // shard-id order, one per shard

  Bytes Serialize() const;
  // Hardened: entry-count cap (kMaxShards) plus a bytes-present bound, blob
  // caps, strict ordering NOT enforced here (the verifier rejects it with a
  // precise message); every decode failure is kCorrupted.
  static Status Deserialize(const Bytes& data, CompositeVO* out);
};

}  // namespace imageproof::shard

#endif  // IMAGEPROOF_SHARD_COMPOSITE_H_
