#include "shard/manifest.h"

#include "crypto/hasher.h"
#include "storage/file_io.h"

namespace imageproof::shard {

namespace {

constexpr uint32_t kManifestMagic = 0x4950534D;  // "MSPI" on the wire

Status Corrupt(const char* what) {
  return Status::Corrupted(std::string("shard manifest: ") + what);
}

}  // namespace

crypto::Digest ShardManifest::ManifestDigest() const {
  crypto::DigestBuilder b;
  b.AddU32(kManifestMagic);
  b.AddU32(num_shards);
  b.AddU64(epoch);
  for (const ShardRoots& r : shards) {
    b.AddDigest(r.current);
    // Signatures are variable length and adjacent; explicit length prefixes
    // keep the preimage injective.
    b.AddU64(r.current_signature.size());
    b.AddBytes(r.current_signature);
    b.AddU8(r.has_prev ? 1 : 0);
    b.AddDigest(r.prev);
    b.AddU64(r.prev_signature.size());
    b.AddBytes(r.prev_signature);
  }
  return b.Finalize();
}

void ShardManifest::Sign(const crypto::RsaPrivateKey& owner_key) {
  signature = crypto::RsaSign(owner_key, ManifestDigest());
}

bool ShardManifest::VerifySignature(
    const crypto::RsaPublicKey& public_key) const {
  return crypto::RsaVerify(public_key, ManifestDigest(), signature);
}

Bytes ShardManifest::Serialize() const {
  ByteWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(num_shards);
  w.PutU64(epoch);
  for (const ShardRoots& r : shards) {
    crypto::PutDigest(w, r.current);
    w.PutBlob(r.current_signature);
    w.PutU8(r.has_prev ? 1 : 0);
    if (r.has_prev) {
      crypto::PutDigest(w, r.prev);
      w.PutBlob(r.prev_signature);
    }
  }
  w.PutBlob(signature);
  return w.Take();
}

Status ShardManifest::Deserialize(const Bytes& data, ShardManifest* out) {
  ByteReader r(data);
  Status s;
  uint32_t magic = 0;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kManifestMagic) return Corrupt("bad magic");
  if (!(s = r.GetU32(&out->num_shards)).ok()) return s;
  if (out->num_shards == 0) return Corrupt("zero shards");
  if (out->num_shards > kMaxShards) return Corrupt("absurd shard count");
  // Each shard entry costs at least a digest + two length bytes, so a count
  // beyond the remaining input is a lie; this bounds the allocation.
  if (out->num_shards > r.remaining() / crypto::kDigestSize) {
    return Corrupt("shard count exceeds input size");
  }
  if (!(s = r.GetU64(&out->epoch)).ok()) return s;
  out->shards.clear();
  out->shards.resize(out->num_shards);
  for (ShardRoots& roots : out->shards) {
    if (!(s = crypto::GetDigest(r, &roots.current)).ok()) return s;
    if (!(s = r.GetBlob(&roots.current_signature)).ok()) return s;
    uint8_t has_prev = 0;
    if (!(s = r.GetU8(&has_prev)).ok()) return s;
    if (has_prev > 1) return Corrupt("bad bool encoding");
    roots.has_prev = has_prev != 0;
    if (roots.has_prev) {
      if (!(s = crypto::GetDigest(r, &roots.prev)).ok()) return s;
      if (!(s = r.GetBlob(&roots.prev_signature)).ok()) return s;
    }
  }
  if (!(s = r.GetBlob(&out->signature)).ok()) return s;
  if (!r.AtEnd()) return Corrupt("trailing bytes");
  return Status::Ok();
}

Status SaveManifest(const std::string& path, const ShardManifest& manifest) {
  return storage::AtomicWriteFile(path, manifest.Serialize());
}

Result<ShardManifest> LoadManifest(const std::string& path) {
  Bytes data;
  Status s = storage::ReadFileBytes(path, &data);
  if (!s.ok()) return s;
  ShardManifest out;
  s = ShardManifest::Deserialize(data, &out);
  if (!s.ok()) return s;
  return out;
}

}  // namespace imageproof::shard
