// CompositeClient: client-side verification of a sharded scatter-gather
// response (DESIGN.md §15, extended Lemma 1).
//
// VerifyComposite establishes, from the composite bytes alone plus the
// owner public key the client already holds:
//
//   1. manifest authenticity — the in-band manifest carries a valid owner
//      signature, so its partition rule and per-shard root digest sets are
//      the owner's statement, not the coordinator's;
//   2. coverage — exactly num_shards entries, entry i claiming shard i: no
//      shard dropped (the dropped shard might hold a better result), none
//      duplicated, none reordered;
//   3. per-shard soundness — each entry's QueryVO verifies under the core
//      client against the entry's root signature, and the root digest that
//      verification REPLAYED is in the manifest's {current, prev} set for
//      that slot: a VO from another shard (signed by the same owner!)
//      replays to a root the slot does not allow, and a stale epoch beyond
//      the one-epoch freshness window is likewise rejected;
//   4. exactness — every per-shard verified score is provably exact
//      (VerifiedResults::topk_scores_exact), not a lower bound; without
//      this a shard could deflate a score to eject an image from the
//      global merge;
//   5. placement — every result id satisfies id mod num_shards == shard id,
//      so an image cannot be answered (or suppressed) by the wrong shard;
//   6. the merge itself — recomputed here, never trusted: the global top-k
//      of the union is the (score desc, id asc)-sorted merge of the local
//      top-k's, which is complete because any global top-k member is by
//      definition in its own shard's local top-k.
//
// Any violation returns a Status naming the failed check; kCorrupted for
// undecodable bytes, kError for a decodable but unsound composite.

#ifndef IMAGEPROOF_SHARD_COMPOSITE_CLIENT_H_
#define IMAGEPROOF_SHARD_COMPOSITE_CLIENT_H_

#include <vector>

#include "core/client.h"
#include "shard/composite.h"
#include "shard/manifest.h"

namespace imageproof::shard {

struct CompositeVerifiedResults {
  // The provable global top-k over all shards, best first, with exact
  // scores; ties broken by ascending id (the corpus-wide convention).
  std::vector<bovw::ScoredImage> topk;
  // Verified raw image payloads, aligned with `topk`.
  std::vector<Bytes> images;
  uint64_t manifest_epoch = 0;
  uint32_t num_shards = 0;
  // Per-shard verified results, index == shard id (for diagnostics and
  // tests; the merge above is derived from exactly these).
  std::vector<core::VerifiedResults> per_shard;
};

class CompositeClient {
 public:
  // `base_params` is the deployment's trusted configuration: config,
  // public key, dims, num_clusters. Its root_signature member is unused —
  // per-shard signatures arrive in the composite and are validated against
  // the manifest.
  explicit CompositeClient(core::PublicParams base_params)
      : params_(std::move(base_params)) {}

  Result<CompositeVerifiedResults> VerifyComposite(
      const std::vector<std::vector<float>>& features, size_t k,
      const Bytes& composite_bytes) const;

  const core::PublicParams& params() const { return params_; }

 private:
  core::PublicParams params_;
};

}  // namespace imageproof::shard

#endif  // IMAGEPROOF_SHARD_COMPOSITE_CLIENT_H_
