// Signed shard manifest: the trust anchor of sharded scatter-gather serving.
//
// A sharded deployment splits the corpus across N shards, each its own full
// ImageProof ADS signed by the one owner keypair. That sharing is exactly
// what makes naive composition unsound: every shard's root signature
// verifies under the same public key, so without further binding a
// malicious coordinator could answer shard 3's slot with shard 1's (valid!)
// VO, drop a shard, or serve one shard from a stale epoch. The manifest is
// the owner-signed statement that closes those holes:
//
//   * the partition: `num_shards`, with the fixed placement rule
//     shard(id) = id mod num_shards — so a verifier can check that every
//     result id actually belongs to the shard that claims it;
//   * per shard, the root digest set {current, prev}: the digest a VO
//     replay must reconstruct for that shard's slot. `prev` (when present)
//     is the root of the epoch immediately before the shard's latest
//     update, giving in-flight queries a one-epoch freshness window — a
//     fan-out racing an epoch swap may legitimately carry one shard's
//     response from the just-replaced root, and the verifier accepts it
//     without accepting arbitrary rollback (anything older than one epoch
//     is rejected);
//   * the manifest epoch, bumped on every re-sign, and the owner signature
//     over all of it.
//
// Freshness caveat (same as the unsharded root signature): a signature
// cannot expire, so an SP can replay the latest manifest it has rather than
// the latest that exists. The guarantee is "consistent with SOME owner-
// signed deployment state, uniform across shards within one epoch window",
// exactly the paper's freshness model extended to N roots. DESIGN.md §15.

#ifndef IMAGEPROOF_SHARD_MANIFEST_H_
#define IMAGEPROOF_SHARD_MANIFEST_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/digest.h"
#include "crypto/rsa.h"

namespace imageproof::shard {

// Sanity cap for the hardened decoder; far above any deployment this
// library targets, small enough that a hostile count cannot balloon an
// allocation.
inline constexpr uint32_t kMaxShards = 4096;

// Root digest set of one shard: the current epoch's root plus (after the
// first update) the immediately preceding one. Signatures ride along so a
// serving layer can be reconstructed from the manifest alone — each is the
// owner's RSA signature over the matching digest, redundant with but
// independently checkable against the digest itself.
struct ShardRoots {
  crypto::Digest current = crypto::Digest::Zero();
  Bytes current_signature;
  bool has_prev = false;
  crypto::Digest prev = crypto::Digest::Zero();
  Bytes prev_signature;

  bool Allows(const crypto::Digest& root) const {
    return root == current || (has_prev && root == prev);
  }
};

struct ShardManifest {
  uint32_t num_shards = 0;
  uint64_t epoch = 0;  // bumped on every re-sign (any shard's update)
  std::vector<ShardRoots> shards;  // index == shard id; size == num_shards
  Bytes signature;  // RsaSign(owner, ManifestDigest())

  // Canonical digest over every field above except the signature itself.
  crypto::Digest ManifestDigest() const;

  // Signature over ManifestDigest() with the owner key / its public half.
  void Sign(const crypto::RsaPrivateKey& owner_key);
  bool VerifySignature(const crypto::RsaPublicKey& public_key) const;

  // The fixed partition rule. num_shards must be nonzero.
  static uint32_t ShardOf(uint64_t image_id, uint32_t num_shards) {
    return static_cast<uint32_t>(image_id % num_shards);
  }

  Bytes Serialize() const;
  // Hardened: allocation caps against bytes present, strict bools, no
  // trailing bytes; every failure is kCorrupted. Structural invariants
  // (nonzero shard count, shards.size() == num_shards) are enforced here,
  // so a deserialized manifest is structurally valid even before its
  // signature is checked.
  static Status Deserialize(const Bytes& data, ShardManifest* out);
};

// Crash-safe persistence at `path` (AtomicWriteFile).
Status SaveManifest(const std::string& path, const ShardManifest& manifest);
Result<ShardManifest> LoadManifest(const std::string& path);

}  // namespace imageproof::shard

#endif  // IMAGEPROOF_SHARD_MANIFEST_H_
