#include "storage/package_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "crypto/rsa.h"
#include "crypto/sha3.h"
#include "storage/file_io.h"
#include "storage/format.h"

namespace imageproof::storage {

namespace {

using bovw::ImageId;
using crypto::Digest;

constexpr uint32_t kStoreMagic = 0x314B5049;  // "IPK1" as on-disk LE bytes
constexpr uint32_t kStoreVersion = 1;

// Section ids, in file order. All nine are always present (possibly empty),
// which lets the open path validate the TOC as one fixed shape instead of a
// combinatorial one.
enum SectionId : uint32_t {
  kConfig = 1,
  kCodebook = 2,
  kCorpus = 3,
  kWeights = 4,
  kFilterGeo = 5,
  kTrees = 6,
  kPostings = 7,
  kImageIndex = 8,
  kImageBlobs = 9,
};
constexpr size_t kNumSections = 9;

constexpr size_t kTocEntryBytes = 4 + 8 + 8 + crypto::kDigestSize;
// magic | version | flags | page_size | section_count (u32 each),
// toc_offset | toc_size | file_size (u64 each), root_digest.
constexpr size_t kHeaderPrefixBytes = 5 * 4 + 3 * 8 + crypto::kDigestSize;
// ... plus toc_digest, plus header_digest over everything before it.
constexpr size_t kHeaderBytes = kHeaderPrefixBytes + 2 * crypto::kDigestSize;

constexpr uint32_t kMinPageSize = 64;
constexpr uint32_t kMaxPageSize = 1u << 20;

uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

Status Corrupt(const std::string& what) {
  return Status::Corrupted("store: " + what);
}

// ---------------------------------------------------------------------------
// The mapped package: owns the mmap and serves image payloads out of it.
// Published to SpPackage as its ImagePayloadSource; the package's `backing`
// shared_ptr pins this object (and therefore the mapping) for as long as
// any snapshot references the package.
// ---------------------------------------------------------------------------

class MappedPackage final : public core::ImagePayloadSource {
 public:
  struct Record {
    ImageId id = 0;
    uint64_t offset = 0;  // into the blob section
    uint64_t size = 0;
    Digest digest;  // h(payload): the lazy integrity check
    Bytes signature;
  };

  size_t Count() const override { return records_.size(); }

  Status Get(ImageId id, bool* found, Bytes* data,
             Bytes* signature) const override {
    *found = false;
    data->clear();
    signature->clear();
    auto it = std::lower_bound(
        records_.begin(), records_.end(), id,
        [](const Record& r, ImageId key) { return r.id < key; });
    if (it == records_.end() || it->id != id) return Status::Ok();
    const uint8_t* payload = BlobPtr(*it);
    // The blob section is the one region open-time digests skip (hashing it
    // would fault every page). Each access pays one hash over the payload
    // it touches instead: a flipped bit in a stored image turns the query
    // that would have served it into kCorrupted.
    if (crypto::Sha3(payload, it->size) != it->digest) {
      return Corrupt("image payload digest diverges (id " +
                     std::to_string(id) + ")");
    }
    *found = true;
    data->assign(payload, payload + it->size);
    *signature = it->signature;
    return Status::Ok();
  }

  Status ForEach(const std::function<Status(ImageId, BytesView, BytesView)>&
                     fn) const override {
    for (const Record& r : records_) {
      const uint8_t* payload = BlobPtr(r);
      if (crypto::Sha3(payload, r.size) != r.digest) {
        return Corrupt("image payload digest diverges (id " +
                       std::to_string(r.id) + ")");
      }
      if (Status s = fn(r.id, BytesView(payload, r.size),
                        BytesView(r.signature));
          !s.ok()) {
        return s;
      }
    }
    return Status::Ok();
  }

  const uint8_t* BlobPtr(const Record& r) const {
    return map_.data() + blobs_offset_ + r.offset;
  }

  MmapFile map_;
  std::vector<Record> records_;
  uint64_t blobs_offset_ = 0;
};

// ---------------------------------------------------------------------------
// Header + TOC
// ---------------------------------------------------------------------------

struct Header {
  uint32_t page_size = 0;
  uint64_t toc_offset = 0;
  uint64_t toc_size = 0;
  uint64_t file_size = 0;
  Digest root_digest;
};

struct TocEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  Digest digest;
};

// Parses and digest-checks header + TOC against the mapped bytes. Every
// failure is kCorrupted: the file existed, so malformed metadata is torn or
// tampered state, not an operational error.
Status ReadHeaderAndToc(const MmapFile& map, Header* header,
                        std::vector<TocEntry>* toc) {
  if (map.size() < kHeaderBytes) return Corrupt("file shorter than header");
  ByteReader r(map.data(), kHeaderBytes);
  uint32_t magic = 0, version = 0, flags = 0, section_count = 0;
  Status s;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kStoreMagic) return Corrupt("bad magic");
  if (!(s = r.GetU32(&version)).ok()) return s;
  if (version != kStoreVersion) return Corrupt("unknown version");
  if (!(s = r.GetU32(&flags)).ok()) return s;
  if (flags != 0) return Corrupt("unknown flags");
  if (!(s = r.GetU32(&header->page_size)).ok()) return s;
  if (header->page_size < kMinPageSize || header->page_size > kMaxPageSize ||
      (header->page_size & (header->page_size - 1)) != 0) {
    return Corrupt("bad page size");
  }
  if (!(s = r.GetU32(&section_count)).ok()) return s;
  if (section_count != kNumSections) return Corrupt("bad section count");
  if (!(s = r.GetU64(&header->toc_offset)).ok()) return s;
  if (!(s = r.GetU64(&header->toc_size)).ok()) return s;
  if (!(s = r.GetU64(&header->file_size)).ok()) return s;
  if (!(s = crypto::GetDigest(r, &header->root_digest)).ok()) return s;
  Digest toc_digest, header_digest;
  if (!(s = crypto::GetDigest(r, &toc_digest)).ok()) return s;
  if (!(s = crypto::GetDigest(r, &header_digest)).ok()) return s;
  // The header digest covers everything before it (including toc_digest),
  // so a flipped bit anywhere in the metadata chain is caught before any
  // field is trusted further.
  if (crypto::Sha3(map.data(), kHeaderPrefixBytes + crypto::kDigestSize) !=
      header_digest) {
    return Corrupt("header digest diverges");
  }
  if (header->file_size != map.size()) return Corrupt("file size diverges");
  if (header->toc_offset != kHeaderBytes ||
      header->toc_size != kNumSections * kTocEntryBytes ||
      header->toc_offset + header->toc_size > map.size()) {
    return Corrupt("bad TOC extent");
  }
  if (crypto::Sha3(map.data() + header->toc_offset, header->toc_size) !=
      toc_digest) {
    return Corrupt("TOC digest diverges");
  }

  ByteReader tr(map.data() + header->toc_offset, header->toc_size);
  uint64_t prev_end = header->toc_offset + header->toc_size;
  toc->clear();
  for (size_t i = 0; i < kNumSections; ++i) {
    TocEntry e;
    if (!(s = tr.GetU32(&e.id)).ok()) return s;
    if (!(s = tr.GetU64(&e.offset)).ok()) return s;
    if (!(s = tr.GetU64(&e.size)).ok()) return s;
    if (!(s = crypto::GetDigest(tr, &e.digest)).ok()) return s;
    // Fixed shape: ids 1..9 in order, page-aligned, non-overlapping, inside
    // the file.
    if (e.id != i + 1) return Corrupt("TOC ids out of order");
    if (e.offset % header->page_size != 0) {
      return Corrupt("section not page-aligned");
    }
    if (e.offset < prev_end || e.size > map.size() ||
        e.offset > map.size() - e.size) {
      return Corrupt("section extent out of bounds");
    }
    prev_end = e.offset + e.size;
    toc->push_back(e);
  }
  // Nothing may trail the last section: appended bytes would be state no
  // digest covers.
  if (prev_end != map.size()) return Corrupt("trailing bytes after sections");
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Section codecs (beyond what storage/format.h provides)
// ---------------------------------------------------------------------------

Bytes EncodePostings(const core::SpPackage& package) {
  ByteWriter w;
  const bool filters = package.config.with_filters;
  if (package.config.freq_grouped) {
    const auto& idx = *package.fg_index;
    w.PutVarint(idx.num_clusters());
    for (size_t c = 0; c < idx.num_clusters(); ++c) {
      const auto& list = idx.list(static_cast<bovw::ClusterId>(c));
      w.PutVarint(list.postings.size());
      for (const auto& g : list.postings) {
        w.PutU32(g.freq);
        w.PutVarint(g.members.size());
        for (const auto& m : g.members) {
          w.PutU64(m.id);
          w.PutF64(m.norm);
        }
        crypto::PutDigest(w, g.digest);
      }
      if (filters) w.PutBlob(list.filter->Serialize());
    }
  } else {
    const auto& idx = *package.inv_index;
    w.PutVarint(idx.num_clusters());
    for (size_t c = 0; c < idx.num_clusters(); ++c) {
      const auto& list = idx.list(static_cast<bovw::ClusterId>(c));
      w.PutVarint(list.postings.size());
      for (const auto& p : list.postings) {
        w.PutU64(p.id);
        w.PutF64(p.impact);
        crypto::PutDigest(w, p.digest);
      }
      if (filters) w.PutBlob(list.filter->Serialize());
    }
  }
  return w.Take();
}

Status DecodeFilter(ByteReader& r, const cuckoo::CuckooParams& geo,
                    std::optional<cuckoo::CuckooFilter>* out) {
  Bytes blob;
  Status s = r.GetBlob(&blob);
  if (!s.ok()) return s;
  Result<cuckoo::CuckooFilter> filter = cuckoo::CuckooFilter::Deserialize(blob);
  if (!filter.ok()) return filter.status();
  if (filter->params() != geo) {
    return Corrupt("filter geometry diverges from committed geometry");
  }
  *out = std::move(*filter);
  return Status::Ok();
}

Status DecodePlainPostings(ByteReader& r, const core::SpPackage& pkg,
                           const std::vector<double>& weights,
                           const cuckoo::CuckooParams& geo,
                           std::vector<invindex::MerkleInvertedList>* lists) {
  uint64_t nl = 0;
  Status s;
  if (!(s = r.GetVarint(&nl)).ok()) return s;
  if (nl != weights.size()) return Corrupt("posting list count diverges");
  lists->resize(nl);
  for (uint64_t c = 0; c < nl; ++c) {
    invindex::MerkleInvertedList& list = (*lists)[c];
    list.cluster = static_cast<bovw::ClusterId>(c);
    list.weight = weights[c];
    uint64_t np = 0;
    if (!(s = r.GetVarint(&np)).ok()) return s;
    // id(8) + impact(8) + digest(32) per posting: cap the allocation
    // against bytes actually present.
    if (np > r.remaining() / (16 + crypto::kDigestSize)) {
      return Corrupt("posting count exceeds input size");
    }
    list.postings.resize(np);
    for (auto& p : list.postings) {
      if (!(s = r.GetU64(&p.id)).ok()) return s;
      if (!(s = r.GetF64(&p.impact)).ok()) return s;
      if (!(s = crypto::GetDigest(r, &p.digest)).ok()) return s;
    }
    if (pkg.config.with_filters) {
      if (!(s = DecodeFilter(r, geo, &list.filter)).ok()) return s;
    }
  }
  return Status::Ok();
}

Status DecodeFgPostings(ByteReader& r, const core::SpPackage& pkg,
                        const std::vector<double>& weights,
                        const cuckoo::CuckooParams& geo,
                        std::vector<freqgroup::FgList>* lists) {
  uint64_t nl = 0;
  Status s;
  if (!(s = r.GetVarint(&nl)).ok()) return s;
  if (nl != weights.size()) return Corrupt("posting list count diverges");
  lists->resize(nl);
  for (uint64_t c = 0; c < nl; ++c) {
    freqgroup::FgList& list = (*lists)[c];
    list.cluster = static_cast<bovw::ClusterId>(c);
    list.weight = weights[c];
    uint64_t ng = 0;
    if (!(s = r.GetVarint(&ng)).ok()) return s;
    // freq(4) + member count(1+) + >=1 member(16) + digest(32) per group.
    if (ng > r.remaining() / (5 + 16 + crypto::kDigestSize)) {
      return Corrupt("group count exceeds input size");
    }
    list.postings.resize(ng);
    for (auto& g : list.postings) {
      if (!(s = r.GetU32(&g.freq)).ok()) return s;
      uint64_t nm = 0;
      if (!(s = r.GetVarint(&nm)).ok()) return s;
      if (nm > r.remaining() / 16) {
        return Corrupt("member count exceeds input size");
      }
      g.members.resize(nm);
      for (auto& m : g.members) {
        if (!(s = r.GetU64(&m.id)).ok()) return s;
        if (!(s = r.GetF64(&m.norm)).ok()) return s;
      }
      if (!(s = crypto::GetDigest(r, &g.digest)).ok()) return s;
    }
    if (pkg.config.with_filters) {
      if (!(s = DecodeFilter(r, geo, &list.filter)).ok()) return s;
    }
  }
  return Status::Ok();
}

// One image-index entry on the wire: id(u64) | blob offset(varint) |
// blob size(varint) | payload digest(32) | signature blob.
Status DecodeImageIndex(ByteReader& r, uint64_t blobs_size,
                        std::vector<MappedPackage::Record>* records) {
  uint64_t n = 0;
  Status s;
  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > r.remaining() / (8 + 1 + 1 + crypto::kDigestSize + 1)) {
    return Corrupt("image count exceeds input size");
  }
  records->resize(n);
  ImageId prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    MappedPackage::Record& rec = (*records)[i];
    if (!(s = r.GetU64(&rec.id)).ok()) return s;
    if (i > 0 && rec.id <= prev) return Corrupt("image ids not ascending");
    prev = rec.id;
    if (!(s = r.GetVarint(&rec.offset)).ok()) return s;
    if (!(s = r.GetVarint(&rec.size)).ok()) return s;
    // Every payload extent must lie inside the blob section: a forged
    // extent would otherwise read (and digest-check, and possibly serve)
    // bytes of unrelated sections.
    if (rec.size > blobs_size || rec.offset > blobs_size - rec.size) {
      return Corrupt("image extent outside blob section");
    }
    if (!(s = crypto::GetDigest(r, &rec.digest)).ok()) return s;
    if (!(s = r.GetBlob(&rec.signature)).ok()) return s;
    if (rec.signature.size() > 4096) return Corrupt("absurd signature size");
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Write
// ---------------------------------------------------------------------------

Status PackageStore::Write(const std::string& path,
                           const core::SpPackage& package,
                           const WriteOptions& options) {
  const uint32_t page = options.page_size;
  if (page < kMinPageSize || page > kMaxPageSize ||
      (page & (page - 1)) != 0) {
    return Status::Error("store: page_size must be a power of two in [64, 1M]");
  }

  Bytes sections[kNumSections];
  {
    ByteWriter w;
    PutConfig(w, package.config);
    sections[kConfig - 1] = w.Take();
  }
  {
    ByteWriter w;
    PutPointSet(w, package.codebook);
    sections[kCodebook - 1] = w.Take();
  }
  {
    ByteWriter w;
    w.PutVarint(package.corpus.size());
    for (const auto& [id, v] : package.corpus) {
      w.PutVarint(id);
      PutBovw(w, v);
    }
    sections[kCorpus - 1] = w.Take();
  }
  {
    ByteWriter w;
    w.PutVarint(package.codebook.size());
    for (size_t c = 0; c < package.codebook.size(); ++c) {
      double weight =
          package.config.freq_grouped
              ? package.fg_index->list(static_cast<bovw::ClusterId>(c)).weight
              : package.inv_index->list(static_cast<bovw::ClusterId>(c)).weight;
      w.PutF64(weight);
    }
    sections[kWeights - 1] = w.Take();
  }
  {
    ByteWriter w;
    PutFilterGeometry(w, package.config.freq_grouped
                             ? package.fg_index->filter_params()
                             : package.inv_index->filter_params());
    sections[kFilterGeo - 1] = w.Take();
  }
  {
    ByteWriter w;
    w.PutVarint(package.mrkd_trees.size());
    for (const auto& tree : package.forest->trees()) PutTree(w, *tree);
    sections[kTrees - 1] = w.Take();
  }
  sections[kPostings - 1] = EncodePostings(package);
  {
    // Image index + blobs in one pass over the uniform accessor (ascending
    // id order; disk-backed payloads are integrity-checked as they are
    // read, so a corrupted source can never be re-published clean).
    ByteWriter index;
    ByteWriter blobs;
    index.PutVarint(package.NumImages());
    Status s = package.ForEachImage(
        [&index, &blobs](ImageId id, BytesView data, BytesView sig) {
          index.PutU64(id);
          index.PutVarint(blobs.size());
          index.PutVarint(data.size);
          crypto::PutDigest(index, crypto::Sha3(data.data, data.size));
          index.PutVarint(sig.size);
          index.PutBytes(sig.data, sig.size);
          blobs.PutBytes(data.data, data.size);
          return Status::Ok();
        });
    if (!s.ok()) return s;
    sections[kImageIndex - 1] = index.Take();
    sections[kImageBlobs - 1] = blobs.Take();
  }

  // Layout: header, TOC, then each section on a page boundary.
  uint64_t offsets[kNumSections];
  uint64_t off = AlignUp(kHeaderBytes + kNumSections * kTocEntryBytes, page);
  for (size_t i = 0; i < kNumSections; ++i) {
    offsets[i] = off;
    off = AlignUp(off + sections[i].size(), page);
  }
  // The file ends exactly where the last section does — no trailing pad, so
  // every byte past it would be detectable junk.
  const uint64_t file_size =
      offsets[kNumSections - 1] + sections[kNumSections - 1].size();

  ByteWriter toc;
  for (size_t i = 0; i < kNumSections; ++i) {
    toc.PutU32(static_cast<uint32_t>(i + 1));
    toc.PutU64(offsets[i]);
    toc.PutU64(sections[i].size());
    crypto::PutDigest(toc, crypto::Sha3(sections[i]));
  }
  const Bytes toc_bytes = toc.Take();

  ByteWriter header;
  header.PutU32(kStoreMagic);
  header.PutU32(kStoreVersion);
  header.PutU32(0);  // flags
  header.PutU32(page);
  header.PutU32(kNumSections);
  header.PutU64(kHeaderBytes);
  header.PutU64(toc_bytes.size());
  header.PutU64(file_size);
  crypto::PutDigest(header, package.RootDigest());
  crypto::PutDigest(header, crypto::Sha3(toc_bytes));
  Bytes header_prefix = header.Take();
  const Digest header_digest = crypto::Sha3(header_prefix);

  Bytes file(file_size, 0);
  std::copy(header_prefix.begin(), header_prefix.end(), file.begin());
  std::copy(header_digest.bytes.begin(), header_digest.bytes.end(),
            file.begin() + static_cast<ptrdiff_t>(header_prefix.size()));
  std::copy(toc_bytes.begin(), toc_bytes.end(),
            file.begin() + static_cast<ptrdiff_t>(kHeaderBytes));
  for (size_t i = 0; i < kNumSections; ++i) {
    std::copy(sections[i].begin(), sections[i].end(),
              file.begin() + static_cast<ptrdiff_t>(offsets[i]));
  }
  return AtomicWriteFile(path, file);
}

// ---------------------------------------------------------------------------
// Open
// ---------------------------------------------------------------------------

Result<std::unique_ptr<core::SpPackage>> PackageStore::Open(
    const std::string& path, const OpenOptions& opts) {
  Result<MmapFile> map = MmapFile::Open(path);
  if (!map.ok()) return map.status();

  Header header;
  std::vector<TocEntry> toc;
  Status s = ReadHeaderAndToc(*map, &header, &toc);
  if (!s.ok()) return s;

  // Every section except the lazily-faulted blobs is digest-checked up
  // front: after this loop, a parse failure genuinely means a format bug or
  // a forged file, never silent bit rot.
  for (const TocEntry& e : toc) {
    if (e.id == kImageBlobs) continue;
    if (crypto::Sha3(map->data() + e.offset, e.size) != e.digest) {
      return Corrupt("section " + std::to_string(e.id) + " digest diverges");
    }
  }
  auto section = [&](SectionId id) {
    const TocEntry& e = toc[id - 1];
    return ByteReader(map->data() + e.offset, e.size);
  };
  auto section_done = [](ByteReader& r, const char* name) {
    return r.AtEnd() ? Status::Ok()
                     : Corrupt(std::string("trailing bytes in ") + name);
  };

  auto pkg = std::make_unique<core::SpPackage>();
  {
    ByteReader r = section(kConfig);
    if (!(s = GetConfig(r, &pkg->config)).ok()) return s;
    if (!(s = section_done(r, "config")).ok()) return s;
  }
  {
    ByteReader r = section(kCodebook);
    if (!(s = GetPointSet(r, &pkg->codebook)).ok()) return s;
    if (!(s = section_done(r, "codebook")).ok()) return s;
  }
  {
    ByteReader r = section(kCorpus);
    uint64_t n = 0;
    if (!(s = r.GetVarint(&n)).ok()) return s;
    if (n > r.remaining() / 2) return Corrupt("corpus size exceeds input");
    pkg->corpus.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t id = 0;
      if (!(s = r.GetVarint(&id)).ok()) return s;
      pkg->corpus[i].first = id;
      if (!(s = GetBovw(r, &pkg->corpus[i].second)).ok()) return s;
    }
    if (!(s = section_done(r, "corpus")).ok()) return s;
  }
  std::vector<double> raw_weights;
  {
    ByteReader r = section(kWeights);
    uint64_t n = 0;
    if (!(s = r.GetVarint(&n)).ok()) return s;
    if (n != pkg->codebook.size()) return Corrupt("weight count diverges");
    raw_weights.resize(n);
    for (auto& weight : raw_weights) {
      if (!(s = r.GetF64(&weight)).ok()) return s;
    }
    if (!(s = section_done(r, "weights")).ok()) return s;
  }
  cuckoo::CuckooParams geo;
  geo.fingerprint_bits = pkg->config.fingerprint_bits;
  geo.seed = pkg->config.filter_seed;
  {
    ByteReader r = section(kFilterGeo);
    if (!(s = GetFilterGeometry(r, &geo)).ok()) return s;
    if (!(s = section_done(r, "filter geometry")).ok()) return s;
  }

  // Indexes restored without rehashing the chains (the whole point of the
  // store): theta and list digests are re-derived, node digests below.
  {
    ByteReader r = section(kPostings);
    if (pkg->config.freq_grouped) {
      std::vector<freqgroup::FgList> lists;
      if (!(s = DecodeFgPostings(r, *pkg, raw_weights, geo, &lists)).ok()) {
        return s;
      }
      Result<freqgroup::FgInvertedIndex> idx = freqgroup::FgInvertedIndex::
          Restore(geo, pkg->config.with_filters, std::move(lists));
      if (!idx.ok()) return idx.status();
      pkg->fg_index = std::make_unique<freqgroup::FgInvertedIndex>(
          std::move(*idx));
      pkg->list_digests = pkg->fg_index->ListDigests();
    } else {
      std::vector<invindex::MerkleInvertedList> lists;
      if (!(s = DecodePlainPostings(r, *pkg, raw_weights, geo, &lists)).ok()) {
        return s;
      }
      Result<invindex::MerkleInvertedIndex> idx = invindex::
          MerkleInvertedIndex::Restore(geo, pkg->config.with_filters,
                                       std::move(lists));
      if (!idx.ok()) return idx.status();
      pkg->inv_index = std::make_unique<invindex::MerkleInvertedIndex>(
          std::move(*idx));
      pkg->list_digests = pkg->inv_index->ListDigests();
    }
    if (!(s = section_done(r, "postings")).ok()) return s;
  }
  {
    ByteReader r = section(kTrees);
    uint64_t num_trees = 0;
    if (!(s = r.GetVarint(&num_trees)).ok()) return s;
    if (num_trees != static_cast<uint64_t>(pkg->config.forest.num_trees)) {
      return Corrupt("tree count diverges from config");
    }
    pkg->forest =
        std::make_unique<ann::RkdForest>(pkg->codebook, pkg->config.forest);
    std::vector<std::unique_ptr<ann::RkdTree>> trees;
    for (uint64_t i = 0; i < num_trees; ++i) {
      std::unique_ptr<ann::RkdTree> tree;
      if (!(s = GetTree(r, pkg->codebook, pkg->config.forest.max_leaf_size,
                        &tree))
               .ok()) {
        return s;
      }
      trees.push_back(std::move(tree));
    }
    pkg->forest->ReplaceTrees(std::move(trees));
    if (!(s = section_done(r, "trees")).ok()) return s;
  }
  for (const auto& tree : pkg->forest->trees()) {
    pkg->mrkd_trees.push_back(std::make_unique<mrkd::MrkdTree>(
        tree.get(), pkg->config.reveal_mode, pkg->list_digests));
  }

  // Image payload source over the mapping.
  auto mapped = std::make_shared<MappedPackage>();
  {
    const TocEntry& blobs = toc[kImageBlobs - 1];
    ByteReader r = section(kImageIndex);
    if (!(s = DecodeImageIndex(r, blobs.size, &mapped->records_)).ok()) {
      return s;
    }
    if (!(s = section_done(r, "image index")).ok()) return s;
    mapped->blobs_offset_ = blobs.offset;
    // Payload pages are random-access (whatever ids land in top-k);
    // readahead would just drag cold neighbours into the page cache.
    map->AdviseRandom(blobs.offset, blobs.size);
  }
  // The source owns the mapping from here on (deep_verify below already
  // reads payloads through it).
  mapped->map_ = std::move(*map);

  // Bind content to header, then (optionally) to the owner's signature.
  // The restored root is a function of the codebook, tree shapes, weights,
  // filter states, and first-posting digests just decoded from the mapped
  // bytes, so this check is over the file as mapped — not over any cached
  // in-memory state.
  const Digest root = pkg->RootDigest();
  if (root != header.root_digest) {
    return Corrupt("package root diverges from header");
  }
  if (opts.params != nullptr) {
    if (!(pkg->config == opts.params->config)) {
      return Corrupt("config diverges from public parameters");
    }
    if (!crypto::RsaVerify(opts.params->public_key, root,
                           opts.params->root_signature)) {
      return Corrupt("root signature failed verification over mapped package");
    }
  }
  if (opts.deep_verify) {
    s = pkg->config.freq_grouped ? pkg->fg_index->VerifyChains()
                                 : pkg->inv_index->VerifyChains();
    if (!s.ok()) return s;
    // Faults in every payload page and checks each stored digest.
    s = mapped->ForEach([](ImageId, BytesView, BytesView) {
      return Status::Ok();
    });
    if (!s.ok()) return s;
  }

  pkg->image_source = mapped.get();
  pkg->backing = std::move(mapped);
  return pkg;
}

Result<PackageLayout> PackageStore::Inspect(const std::string& path) {
  Result<MmapFile> map = MmapFile::Open(path);
  if (!map.ok()) return map.status();
  Header header;
  std::vector<TocEntry> toc;
  Status s = ReadHeaderAndToc(*map, &header, &toc);
  if (!s.ok()) return s;
  PackageLayout layout;
  layout.page_size = header.page_size;
  layout.file_size = header.file_size;
  layout.header_bytes = kHeaderBytes;
  layout.toc_offset = header.toc_offset;
  layout.toc_size = header.toc_size;
  for (const TocEntry& e : toc) {
    layout.sections.push_back(SectionExtent{e.id, e.offset, e.size});
  }
  return layout;
}

Status PackageStore::Scrub(const std::string& path,
                           const ScrubOptions& options, ScrubReport* report) {
  ScrubReport local;
  ScrubReport* rep = report != nullptr ? report : &local;
  *rep = ScrubReport{};
  Result<MmapFile> map = MmapFile::Open(path);
  if (!map.ok()) return map.status();
  Header header;
  std::vector<TocEntry> toc;
  // Re-checks the header and TOC digests against the mapped bytes, which
  // also re-validates every section extent before we trust it below.
  Status s = ReadHeaderAndToc(*map, &header, &toc);
  if (!s.ok()) return s;
  rep->bytes_hashed += kHeaderBytes + header.toc_size;

  const size_t chunk = std::max<size_t>(4096, options.chunk_bytes);
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  uint64_t paced_bytes = 0;
  for (const TocEntry& e : toc) {
    crypto::Sha3_256 hasher;
    uint64_t done = 0;
    while (done < e.size) {
      if (options.cancel != nullptr &&
          options.cancel->load(std::memory_order_acquire)) {
        return Status::Unavailable("scrub: cancelled");
      }
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(chunk, e.size - done));
      hasher.Update(map->data() + e.offset + done, n);
      done += n;
      paced_bytes += n;
      if (options.bytes_per_sec > 0) {
        // Sleep off any lead over the pace line so a full-file scrub
        // averages at most bytes_per_sec of read+hash bandwidth.
        const auto budget = std::chrono::duration<double>(
            static_cast<double>(paced_bytes) /
            static_cast<double>(options.bytes_per_sec));
        const auto ahead =
            start + std::chrono::duration_cast<Clock::duration>(budget) -
            Clock::now();
        if (ahead > Clock::duration::zero()) {
          std::this_thread::sleep_for(ahead);
        }
      }
    }
    Digest got = hasher.Finalize();
    rep->bytes_hashed += e.size;
    if (fault::InjectFault("storage.scrub.bitflip")) {
      const uint64_t r =
          fault::FaultInjector::Global().Draw("storage.scrub.bitflip");
      got.bytes[(r >> 3) % got.bytes.size()] ^=
          static_cast<uint8_t>(1u << (r & 7));
    }
    if (got != e.digest) {
      return Status::Corrupted("scrub: section " + std::to_string(e.id) +
                               " digest diverges in " + path);
    }
    ++rep->sections_checked;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Epoch directory protocol
// ---------------------------------------------------------------------------

std::string PackageStore::EpochFileName(uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "pkg-%020llu.ipk",
                static_cast<unsigned long long>(epoch));
  return buf;
}

Result<std::string> PackageStore::WriteEpoch(const std::string& dir,
                                             uint64_t epoch,
                                             const core::SpPackage& package,
                                             const WriteOptions& options) {
  std::string path = dir + "/" + EpochFileName(epoch);
  Status s = Write(path, package, options);
  if (!s.ok()) return s;
  return path;
}

Status PackageStore::SetCurrentEpoch(const std::string& dir, uint64_t epoch) {
  std::string line = "IPKC " + std::to_string(epoch) + "\n";
  return AtomicWriteFile(dir + "/CURRENT",
                         Bytes(line.begin(), line.end()));
}

Result<uint64_t> PackageStore::CurrentEpoch(const std::string& dir) {
  Bytes data;
  Status s = ReadFileBytes(dir + "/CURRENT", &data);
  if (!s.ok()) return s;
  std::string text(data.begin(), data.end());
  // Strict shape: "IPKC <decimal>\n", nothing else. CURRENT is written
  // atomically, so anything malformed is tampering or a foreign file.
  if (text.size() < 7 || text.compare(0, 5, "IPKC ") != 0 ||
      text.back() != '\n') {
    return Status(Corrupt("malformed CURRENT file"));
  }
  uint64_t epoch = 0;
  size_t i = 5;
  const size_t end = text.size() - 1;
  if (end - i == 0 || end - i > 20) {
    return Status(Corrupt("malformed CURRENT epoch"));
  }
  for (; i < end; ++i) {
    if (text[i] < '0' || text[i] > '9') {
      return Status(Corrupt("malformed CURRENT epoch"));
    }
    uint64_t next = epoch * 10 + static_cast<uint64_t>(text[i] - '0');
    if (next < epoch) return Status(Corrupt("CURRENT epoch overflows"));
    epoch = next;
  }
  return epoch;
}

Result<std::unique_ptr<core::SpPackage>> PackageStore::OpenCurrent(
    const std::string& dir, const OpenOptions& opts, uint64_t* epoch_out) {
  Result<uint64_t> epoch = CurrentEpoch(dir);
  if (!epoch.ok()) return epoch.status();
  if (epoch_out != nullptr) *epoch_out = *epoch;
  return Open(dir + "/" + EpochFileName(*epoch), opts);
}

}  // namespace imageproof::storage
