#include "storage/epoch_janitor.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "storage/file_io.h"
#include "storage/package_store.h"

namespace imageproof::storage {

EpochJanitor::EpochJanitor(JanitorOptions options, RollbackFn on_corruption)
    : options_(std::move(options)), on_corruption_(std::move(on_corruption)) {}

EpochJanitor::~EpochJanitor() { Stop(); }

void EpochJanitor::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || options_.scrub_interval.count() <= 0) return;
  stop_.store(false, std::memory_order_release);
  cancel_scrub_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  started_ = true;
}

void EpochJanitor::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  cancel_scrub_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  thread_.join();
  started_ = false;
}

void EpochJanitor::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_for(lock, options_.scrub_interval, [this] {
        return stop_.load(std::memory_order_acquire);
      });
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (options_.scrub) (void)ScrubOnce();
    if (stop_.load(std::memory_order_acquire)) return;
    (void)GcOnce();
  }
}

std::string EpochJanitor::QuarantineMarkerPath(const std::string& dir,
                                               uint64_t epoch) {
  return dir + "/" + PackageStore::EpochFileName(epoch) + ".quarantined";
}

bool EpochJanitor::IsQuarantined(const std::string& dir, uint64_t epoch) {
  return ::access(QuarantineMarkerPath(dir, epoch).c_str(), F_OK) == 0;
}

Result<std::vector<uint64_t>> EpochJanitor::ListEpochs(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Result<std::vector<uint64_t>>(
        Status::Error("janitor: cannot open directory " + dir));
  }
  std::vector<uint64_t> epochs;
  while (dirent* ent = ::readdir(d)) {
    const char* name = ent->d_name;
    const size_t len = std::strlen(name);
    // pkg-<20 digits>.ipk and nothing else (markers end differently).
    if (len != 4 + 20 + 4 || std::strncmp(name, "pkg-", 4) != 0 ||
        std::strcmp(name + 24, ".ipk") != 0) {
      continue;
    }
    uint64_t epoch = 0;
    bool digits = true;
    for (size_t i = 4; i < 24; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      epoch = epoch * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (digits) epochs.push_back(epoch);
  }
  ::closedir(d);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Result<size_t> EpochJanitor::GcOnce() {
  gc_passes_.fetch_add(1, std::memory_order_relaxed);
  if (options_.retain_epochs == 0) return size_t{0};
  size_t retain = options_.retain_epochs;
  if (options_.scrub && retain < 2) retain = 2;  // rollback needs a target
  Result<std::vector<uint64_t>> epochs = ListEpochs(options_.dir);
  if (!epochs.ok()) return epochs.status();
  if (epochs->size() <= retain) return size_t{0};
  // A missing/unreadable CURRENT means a fresh or torn directory; deleting
  // anything while the pointer is broken would destroy the evidence an
  // operator needs, so GC declines the pass instead.
  Result<uint64_t> scan_current = PackageStore::CurrentEpoch(options_.dir);
  if (!scan_current.ok()) return size_t{0};
  size_t deleted = 0;
  const size_t candidates = epochs->size() - retain;
  for (size_t i = 0; i < candidates; ++i) {
    const uint64_t e = (*epochs)[i];
    if (e >= *scan_current) continue;  // possibly a publication mid-flight
    // Re-read the pointer right before the unlink: a flip onto this epoch
    // since the scan (rollback, operator) must win the race.
    Result<uint64_t> now = PackageStore::CurrentEpoch(options_.dir);
    if (!now.ok() || *now == e) continue;
    const std::string path =
        options_.dir + "/" + PackageStore::EpochFileName(e);
    if (std::remove(path.c_str()) == 0) {
      ++deleted;
      epochs_deleted_.fetch_add(1, std::memory_order_relaxed);
    }
    (void)std::remove(QuarantineMarkerPath(options_.dir, e).c_str());
  }
  return deleted;
}

Result<uint64_t> EpochJanitor::ScrubEpoch(uint64_t epoch, bool is_current) {
  const std::string path =
      options_.dir + "/" + PackageStore::EpochFileName(epoch);
  ScrubOptions scrub_opts;
  scrub_opts.bytes_per_sec = options_.scrub_bytes_per_sec;
  scrub_opts.cancel = &cancel_scrub_;
  ScrubReport report;
  Status s = PackageStore::Scrub(path, scrub_opts, &report);
  scrub_bytes_.fetch_add(report.bytes_hashed, std::memory_order_relaxed);
  if (s.ok()) return uint64_t{0};
  if (s.code() != StatusCode::kCorrupted) return s;  // cancelled / IO error
  scrub_corruptions_.fetch_add(1, std::memory_order_relaxed);
  Bytes marker(s.message().begin(), s.message().end());
  marker.push_back('\n');
  if (AtomicWriteFile(QuarantineMarkerPath(options_.dir, epoch), marker)
          .ok()) {
    epochs_quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
  // Rollback is only meaningful for the serving epoch: a rotted retained
  // epoch endangers nothing that is live — the marker simply strikes it
  // from the rollback-candidate list before anyone tries to trust it.
  if (is_current && on_corruption_) {
    rollbacks_requested_.fetch_add(1, std::memory_order_relaxed);
    Status rb = on_corruption_(epoch);
    if (!rb.ok()) rollbacks_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return uint64_t{1};
}

Result<uint64_t> EpochJanitor::ScrubOnce() {
  Result<uint64_t> current = PackageStore::CurrentEpoch(options_.dir);
  if (!current.ok()) return uint64_t{0};  // fresh directory: nothing to scrub
  scrub_passes_.fetch_add(1, std::memory_order_relaxed);

  // CURRENT first — it is the epoch whose rot matters most, and its
  // detection must not wait behind a pile of retained files.
  Result<uint64_t> corruptions = ScrubEpoch(*current, /*is_current=*/true);
  if (!corruptions.ok()) return corruptions;
  uint64_t found = *corruptions;

  // Then every retained, not-yet-quarantined epoch: bit rot in a rollback
  // candidate is invisible until the exact moment rollback needs it, which
  // is the worst time to find out. Re-read CURRENT afterwards — the
  // current-epoch scrub above may itself have triggered a rollback that
  // republished a new epoch, and retained-epoch rules apply to the rest.
  Result<std::vector<uint64_t>> epochs = ListEpochs(options_.dir);
  if (!epochs.ok()) return found;
  Result<uint64_t> now = PackageStore::CurrentEpoch(options_.dir);
  for (uint64_t e : *epochs) {
    if (cancel_scrub_.load(std::memory_order_acquire)) break;
    if (now.ok() && e == *now) continue;  // already covered (or fresh)
    if (IsQuarantined(options_.dir, e)) continue;
    Result<uint64_t> r = ScrubEpoch(e, /*is_current=*/false);
    if (!r.ok()) break;  // cancelled / IO error; keep what we found
    found += *r;
  }
  return found;
}

JanitorStats EpochJanitor::stats() const {
  JanitorStats s;
  s.gc_passes = gc_passes_.load(std::memory_order_relaxed);
  s.epochs_deleted = epochs_deleted_.load(std::memory_order_relaxed);
  s.scrub_passes = scrub_passes_.load(std::memory_order_relaxed);
  s.scrub_bytes = scrub_bytes_.load(std::memory_order_relaxed);
  s.scrub_corruptions = scrub_corruptions_.load(std::memory_order_relaxed);
  s.epochs_quarantined = epochs_quarantined_.load(std::memory_order_relaxed);
  s.rollbacks_requested = rollbacks_requested_.load(std::memory_order_relaxed);
  s.rollbacks_failed = rollbacks_failed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace imageproof::storage
