#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/fault.h"

namespace imageproof::storage {

namespace {

std::string DirnameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Errno(const std::string& what) {
  return Status::Error("storage: " + what + ": " + std::strerror(errno));
}

// fsync a directory so a just-renamed entry is durable. Some filesystems
// reject O_DIRECTORY fsync; that is reported, not ignored — the protocol's
// durability claim depends on it.
Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir for fsync " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir " + dir);
  return Status::Ok();
}

}  // namespace

Status ReadFileBytes(const std::string& path, Bytes* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Error("storage: cannot open for reading: " + path);
  out->clear();
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, const Bytes& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open temp " + tmp);

  // Simulated power failure mid-write: stop after a deterministic prefix,
  // leaving a torn temp file on disk exactly as a crash would.
  size_t to_write = data.size();
  bool tear = false;
  if (fault::InjectFault("storage.file.short_write")) {
    to_write = data.empty()
                   ? 0
                   : fault::FaultInjector::Global().Draw(
                         "storage.file.short_write") % data.size();
    tear = true;
  }
  size_t off = 0;
  while (off < to_write) {
    ssize_t w = ::write(fd, data.data() + off, to_write - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write " + tmp);
    }
    off += static_cast<size_t>(w);
  }
  if (tear) {
    ::close(fd);
    return Status::Corrupted("storage: injected short write on " + tmp);
  }

  if (fault::InjectFault("storage.file.fsync_fail")) {
    ::close(fd);
    return Status::Corrupted("storage: injected fsync failure on " + tmp);
  }
  if (::fsync(fd) != 0) {
    Status s = Errno("fsync " + tmp);
    ::close(fd);
    return s;
  }
  if (::close(fd) != 0) return Errno("close " + tmp);

  // The publish step. Until this rename returns, readers of `path` see the
  // old file (or nothing); after it, the complete new one.
  if (fault::InjectFault("storage.file.rename_fail")) {
    return Status::Corrupted("storage: injected rename failure on " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename " + tmp + " -> " + path);
  }
  return FsyncDir(DirnameOf(path));
}

MmapFile::~MmapFile() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (mapped_ && data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat " + path);
    ::close(fd);
    return s;
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ > 0) {
    void* p = ::mmap(nullptr, out.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) {
      Status s = Errno("mmap " + path);
      ::close(fd);
      return s;
    }
    out.data_ = static_cast<const uint8_t*>(p);
    out.mapped_ = true;
  }
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point.
  ::close(fd);
  return out;
}

void MmapFile::AdviseRandom(size_t offset, size_t len) const {
  if (!mapped_ || len == 0 || offset >= size_) return;
  const size_t page = 4096;
  size_t begin = offset & ~(page - 1);
  size_t end = std::min(size_, offset + len);
  ::madvise(const_cast<uint8_t*>(data_ + begin), end - begin, MADV_RANDOM);
}

}  // namespace imageproof::storage
