// Canonical on-disk codec for package components, shared by the interchange
// serializer (storage/serializer.cc) and the mmap package store
// (storage/package_store.cc).
//
// Every encoder/decoder here follows the hardened-deserialization discipline
// of PR 4: decoders cap every allocation against the bytes actually present,
// bound all counts with absolute sanity limits, decode bools strictly (0/1
// only), validate structural invariants (tree acyclicity, sorted BoVW
// entries, filter geometry), and report every failure as
// StatusCode::kCorrupted. Encodings are the canonical little-endian forms of
// common/bytes.h — both persistence formats must produce bit-identical
// component bytes so digests derived from them agree.

#ifndef IMAGEPROOF_STORAGE_FORMAT_H_
#define IMAGEPROOF_STORAGE_FORMAT_H_

#include <memory>

#include "ann/rkd_tree.h"
#include "bovw/bovw.h"
#include "common/bytes.h"
#include "common/status.h"
#include "core/config.h"
#include "crypto/bignum.h"
#include "cuckoo/cuckoo_filter.h"

namespace imageproof::storage {

// Scheme configuration (fixed-width header fields + strict bools).
void PutConfig(ByteWriter& w, const core::Config& c);
Status GetConfig(ByteReader& r, core::Config* c);

// Row-major float point set with shape prefix and allocation caps.
void PutPointSet(ByteWriter& w, const ann::PointSet& points);
Status GetPointSet(ByteReader& r, ann::PointSet* out);

// Sparse BoVW vector; entries must be strictly cluster-sorted with nonzero
// frequencies, both enforced on decode.
void PutBovw(ByteWriter& w, const bovw::BovwVector& v);
Status GetBovw(ByteReader& r, bovw::BovwVector* out);

// Randomized k-d tree structure. Nodes are written with a kind byte and only
// the fields that kind uses (no dead wire bytes); the decoder checks spans,
// child ranges, the strictly-increasing-child invariant (no cycles), and
// that point indices form a permutation.
void PutTree(ByteWriter& w, const ann::RkdTree& tree);
Status GetTree(ByteReader& r, const ann::PointSet& points, int max_leaf,
               std::unique_ptr<ann::RkdTree>* out);

// Arbitrary-precision integer as a length-prefixed magnitude blob.
void PutBigInt(ByteWriter& w, const crypto::BigInt& v);
Status GetBigInt(ByteReader& r, crypto::BigInt* out);

// Shared cuckoo-filter geometry (committed state: frozen at the original
// build). Get validates the power-of-two bucket count and allocation bounds;
// fingerprint_bits and seed ride in the config and are filled by the caller.
void PutFilterGeometry(ByteWriter& w, const cuckoo::CuckooParams& geo);
Status GetFilterGeometry(ByteReader& r, cuckoo::CuckooParams* geo);

}  // namespace imageproof::storage

#endif  // IMAGEPROOF_STORAGE_FORMAT_H_
