#include "storage/format.h"

namespace imageproof::storage {

void PutConfig(ByteWriter& w, const core::Config& c) {
  w.PutU32(static_cast<uint32_t>(c.forest.num_trees));
  w.PutU32(static_cast<uint32_t>(c.forest.max_leaf_size));
  w.PutU32(static_cast<uint32_t>(c.forest.max_leaf_checks));
  w.PutU64(c.forest.seed);
  w.PutU8(c.share_nodes ? 1 : 0);
  w.PutU8(static_cast<uint8_t>(c.reveal_mode));
  w.PutU8(c.with_filters ? 1 : 0);
  w.PutU8(c.freq_grouped ? 1 : 0);
  w.PutU32(c.fingerprint_bits);
  w.PutU64(c.filter_seed);
  w.PutU64(c.check_batch);
  w.PutU32(static_cast<uint32_t>(c.rsa_bits));
  w.PutU8(c.sign_images ? 1 : 0);
}

Status GetConfig(ByteReader& r, core::Config* c) {
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  uint8_t u8 = 0;
  Status s;
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.num_trees = static_cast<int>(u32);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.max_leaf_size = static_cast<int>(u32);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.max_leaf_checks = static_cast<int>(u32);
  if (!(s = r.GetU64(&c->forest.seed)).ok()) return s;
  // Bools decode strictly (0 or 1 only). Accepting any nonzero byte as
  // "true" would leave 7 dead bits per flag — bytes a storage fault can
  // corrupt without changing the parsed package, which the update path's
  // clone-vs-base validation could then never detect.
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad bool encoding");
  c->share_nodes = u8 != 0;
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad reveal mode");
  c->reveal_mode = static_cast<mrkd::RevealMode>(u8);
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad bool encoding");
  c->with_filters = u8 != 0;
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad bool encoding");
  c->freq_grouped = u8 != 0;
  if (!(s = r.GetU32(&c->fingerprint_bits)).ok()) return s;
  if (!(s = r.GetU64(&c->filter_seed)).ok()) return s;
  if (!(s = r.GetU64(&u64)).ok()) return s;
  c->check_batch = static_cast<size_t>(u64);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->rsa_bits = static_cast<int>(u32);
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad bool encoding");
  c->sign_images = u8 != 0;
  if (c->forest.num_trees <= 0 || c->forest.num_trees > 256 ||
      c->forest.max_leaf_size <= 0) {
    return Status::Corrupted("storage: implausible forest parameters");
  }
  // The cuckoo-filter geometry shifts by fingerprint_bits; out-of-range
  // values from a corrupted config would be undefined behavior downstream.
  if (c->fingerprint_bits == 0 || c->fingerprint_bits > 16) {
    return Status::Corrupted("storage: fingerprint bits out of range");
  }
  return Status::Ok();
}

void PutPointSet(ByteWriter& w, const ann::PointSet& points) {
  w.PutVarint(points.dims());
  w.PutVarint(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const float* row = points.row(i);
    for (size_t d = 0; d < points.dims(); ++d) w.PutF32(row[d]);
  }
}

Status GetPointSet(ByteReader& r, ann::PointSet* out) {
  uint64_t dims, count;
  Status s;
  if (!(s = r.GetVarint(&dims)).ok()) return s;
  if (!(s = r.GetVarint(&count)).ok()) return s;
  if (dims == 0 || dims > 4096 || count > (1u << 26)) {
    return Status::Corrupted("storage: implausible point set shape");
  }
  // Cap the allocation against the bytes actually present: dims*count f32s
  // must fit in what remains, so a forged header cannot demand gigabytes.
  if (dims * count > r.remaining() / 4) {
    return Status::Corrupted("storage: point set exceeds input size");
  }
  *out = ann::PointSet(dims, count);
  for (size_t i = 0; i < count; ++i) {
    float* row = out->row(i);
    for (size_t d = 0; d < dims; ++d) {
      if (!(s = r.GetF32(&row[d])).ok()) return s;
    }
  }
  return Status::Ok();
}

void PutBovw(ByteWriter& w, const bovw::BovwVector& v) {
  w.PutVarint(v.entries.size());
  for (const auto& [c, f] : v.entries) {
    w.PutVarint(c);
    w.PutVarint(f);
  }
}

Status GetBovw(ByteReader& r, bovw::BovwVector* out) {
  uint64_t n;
  Status s = r.GetVarint(&n);
  if (!s.ok()) return s;
  if (n > r.remaining() / 2) {
    return Status::Corrupted("storage: BoVW size exceeds input");
  }
  out->entries.resize(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t c = 0, f = 0;
    if (!(s = r.GetVarint(&c)).ok()) return s;
    if (!(s = r.GetVarint(&f)).ok()) return s;
    if (i > 0 && c <= prev) return Status::Corrupted("storage: BoVW not sorted");
    if (f == 0) return Status::Corrupted("storage: zero frequency");
    // Both fields narrow to 32 bits in memory; a varint whose high bits a
    // fault set would otherwise truncate silently to the same value.
    if (c > 0xFFFFFFFFull || f > 0xFFFFFFFFull) {
      return Status::Corrupted("storage: BoVW entry out of range");
    }
    prev = c;
    out->entries[i] = {static_cast<bovw::ClusterId>(c),
                       static_cast<uint32_t>(f)};
  }
  return Status::Ok();
}

// Tree nodes are written with a kind byte and ONLY the fields that kind
// uses: a leaf's split plane and an internal node's point span are dead
// state that search and the digest tree never read. Dead wire bytes would
// be bytes a storage fault can flip without any detectable consequence —
// keeping every serialized byte live is what lets the engine's update
// validation promise "any corruption of committed state is caught".
// (The per-tree max_leaf_size is likewise omitted: it is build-time
// metadata already present in the config header.)
void PutTree(ByteWriter& w, const ann::RkdTree& tree) {
  w.PutVarint(tree.nodes().size());
  for (const ann::RkdNode& n : tree.nodes()) {
    if (n.IsLeaf()) {
      w.PutU8(1);
      w.PutU32(static_cast<uint32_t>(n.begin));
      w.PutU32(static_cast<uint32_t>(n.end));
    } else {
      w.PutU8(0);
      w.PutU32(static_cast<uint32_t>(n.split_dim));
      w.PutF32(n.split_value);
      w.PutU32(static_cast<uint32_t>(n.left));
      w.PutU32(static_cast<uint32_t>(n.right));
    }
  }
  w.PutVarint(tree.point_indices().size());
  for (int32_t i : tree.point_indices()) {
    w.PutU32(static_cast<uint32_t>(i));
  }
}

Status GetTree(ByteReader& r, const ann::PointSet& points, int max_leaf,
               std::unique_ptr<ann::RkdTree>* out) {
  uint64_t num_nodes;
  Status s;
  if (!(s = r.GetVarint(&num_nodes)).ok()) return s;
  if (num_nodes > (1u << 27)) {
    return Status::Corrupted("storage: implausible tree shape");
  }
  // A leaf occupies 9 wire bytes (the smaller node kind); cap the
  // allocation against what is actually present before resizing.
  if (num_nodes > r.remaining() / 9) {
    return Status::Corrupted("storage: tree node count exceeds input size");
  }
  std::vector<ann::RkdNode> nodes(num_nodes);
  for (auto& n : nodes) {
    uint8_t kind = 0;
    uint32_t u = 0;
    float f = 0;
    if (!(s = r.GetU8(&kind)).ok()) return s;
    if (kind > 1) return Status::Corrupted("storage: bad tree node kind");
    if (kind == 1) {  // leaf: span only; RkdNode defaults mark it a leaf
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.begin = static_cast<int32_t>(u);
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.end = static_cast<int32_t>(u);
    } else {  // internal: split plane + children
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.split_dim = static_cast<int32_t>(u);
      if (!(s = r.GetF32(&f)).ok()) return s;
      n.split_value = f;
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.left = static_cast<int32_t>(u);
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.right = static_cast<int32_t>(u);
    }
  }
  uint64_t num_indices;
  if (!(s = r.GetVarint(&num_indices)).ok()) return s;
  if (num_indices != points.size()) {
    return Status::Corrupted("storage: tree index count mismatch");
  }
  std::vector<int32_t> indices(num_indices);
  std::vector<bool> seen(points.size(), false);
  for (auto& i : indices) {
    uint32_t u = 0;
    if (!(s = r.GetU32(&u)).ok()) return s;
    if (u >= points.size() || seen[u]) {
      return Status::Corrupted("storage: tree indices not a permutation");
    }
    seen[u] = true;
    i = static_cast<int32_t>(u);
  }
  // Structural sanity: children in range, leaves with valid spans. Children
  // must additionally sit at strictly larger indices than their parent (the
  // builder's preorder layout guarantees this), which rules out cycles — a
  // forged cyclic tree would otherwise recurse forever during the digest
  // rebuild and every later traversal.
  for (size_t ni = 0; ni < nodes.size(); ++ni) {
    const auto& n = nodes[ni];
    if (n.IsLeaf()) {
      if (n.begin < 0 || n.end < n.begin ||
          static_cast<size_t>(n.end) > points.size()) {
        return Status::Corrupted("storage: bad leaf span");
      }
    } else {
      if (n.left < 0 || n.right < 0 ||
          static_cast<size_t>(n.left) >= nodes.size() ||
          static_cast<size_t>(n.right) >= nodes.size() ||
          static_cast<size_t>(n.left) <= ni ||
          static_cast<size_t>(n.right) <= ni ||
          n.split_dim < 0 || static_cast<size_t>(n.split_dim) >= points.dims()) {
        return Status::Corrupted("storage: bad internal node");
      }
    }
  }
  *out = std::make_unique<ann::RkdTree>(points, max_leaf, std::move(nodes),
                                        std::move(indices));
  return Status::Ok();
}

void PutBigInt(ByteWriter& w, const crypto::BigInt& v) {
  w.PutBlob(v.ToBytes());
}

Status GetBigInt(ByteReader& r, crypto::BigInt* out) {
  Bytes b;
  Status s = r.GetBlob(&b);
  if (!s.ok()) return s;
  if (b.size() > 4096) return Status::Corrupted("storage: absurd bigint");
  *out = crypto::BigInt::FromBytes(b);
  return Status::Ok();
}

void PutFilterGeometry(ByteWriter& w, const cuckoo::CuckooParams& geo) {
  w.PutU32(geo.num_buckets);
  w.PutU32(geo.slots_per_bucket);
  w.PutU32(geo.max_kicks);
}

Status GetFilterGeometry(ByteReader& r, cuckoo::CuckooParams* geo) {
  Status s;
  if (!(s = r.GetU32(&geo->num_buckets)).ok()) return s;
  if (!(s = r.GetU32(&geo->slots_per_bucket)).ok()) return s;
  if (!(s = r.GetU32(&geo->max_kicks)).ok()) return s;
  // num_buckets must be a power of two for XOR partial-key hashing, and the
  // table allocation (num_buckets * slots_per_bucket) is capped so a forged
  // header cannot demand gigabytes.
  if (geo->num_buckets == 0 ||
      (geo->num_buckets & (geo->num_buckets - 1)) != 0 ||
      geo->num_buckets > (1u << 26)) {
    return Status::Corrupted(
        "storage: filter bucket count not a small power of two");
  }
  if (geo->slots_per_bucket == 0 || geo->slots_per_bucket > 16 ||
      geo->max_kicks == 0 || geo->max_kicks > 100000) {
    return Status::Corrupted("storage: implausible filter geometry");
  }
  return Status::Ok();
}

}  // namespace imageproof::storage
