#include "storage/serializer.h"

#include <cstdio>

#include "common/fault.h"

namespace imageproof::storage {

namespace {

constexpr uint32_t kPackageMagic = 0x49505031;  // "IPP1"
constexpr uint32_t kParamsMagic = 0x49505042;   // "IPPB"
constexpr uint32_t kFormatVersion = 1;

void PutConfig(ByteWriter& w, const core::Config& c) {
  w.PutU32(static_cast<uint32_t>(c.forest.num_trees));
  w.PutU32(static_cast<uint32_t>(c.forest.max_leaf_size));
  w.PutU32(static_cast<uint32_t>(c.forest.max_leaf_checks));
  w.PutU64(c.forest.seed);
  w.PutU8(c.share_nodes ? 1 : 0);
  w.PutU8(static_cast<uint8_t>(c.reveal_mode));
  w.PutU8(c.with_filters ? 1 : 0);
  w.PutU8(c.freq_grouped ? 1 : 0);
  w.PutU32(c.fingerprint_bits);
  w.PutU64(c.filter_seed);
  w.PutU64(c.check_batch);
  w.PutU32(static_cast<uint32_t>(c.rsa_bits));
  w.PutU8(c.sign_images ? 1 : 0);
}

Status GetConfig(ByteReader& r, core::Config* c) {
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  uint8_t u8 = 0;
  Status s;
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.num_trees = static_cast<int>(u32);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.max_leaf_size = static_cast<int>(u32);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.max_leaf_checks = static_cast<int>(u32);
  if (!(s = r.GetU64(&c->forest.seed)).ok()) return s;
  // Bools decode strictly (0 or 1 only). Accepting any nonzero byte as
  // "true" would leave 7 dead bits per flag — bytes a storage fault can
  // corrupt without changing the parsed package, which the update path's
  // clone-vs-base validation could then never detect.
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad bool encoding");
  c->share_nodes = u8 != 0;
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad reveal mode");
  c->reveal_mode = static_cast<mrkd::RevealMode>(u8);
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad bool encoding");
  c->with_filters = u8 != 0;
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad bool encoding");
  c->freq_grouped = u8 != 0;
  if (!(s = r.GetU32(&c->fingerprint_bits)).ok()) return s;
  if (!(s = r.GetU64(&c->filter_seed)).ok()) return s;
  if (!(s = r.GetU64(&u64)).ok()) return s;
  c->check_batch = static_cast<size_t>(u64);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->rsa_bits = static_cast<int>(u32);
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Corrupted("storage: bad bool encoding");
  c->sign_images = u8 != 0;
  if (c->forest.num_trees <= 0 || c->forest.num_trees > 256 ||
      c->forest.max_leaf_size <= 0) {
    return Status::Corrupted("storage: implausible forest parameters");
  }
  // The cuckoo-filter geometry shifts by fingerprint_bits; out-of-range
  // values from a corrupted config would be undefined behavior downstream.
  if (c->fingerprint_bits == 0 || c->fingerprint_bits > 16) {
    return Status::Corrupted("storage: fingerprint bits out of range");
  }
  return Status::Ok();
}

void PutPointSet(ByteWriter& w, const ann::PointSet& points) {
  w.PutVarint(points.dims());
  w.PutVarint(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const float* row = points.row(i);
    for (size_t d = 0; d < points.dims(); ++d) w.PutF32(row[d]);
  }
}

Status GetPointSet(ByteReader& r, ann::PointSet* out) {
  uint64_t dims, count;
  Status s;
  if (!(s = r.GetVarint(&dims)).ok()) return s;
  if (!(s = r.GetVarint(&count)).ok()) return s;
  if (dims == 0 || dims > 4096 || count > (1u << 26)) {
    return Status::Corrupted("storage: implausible point set shape");
  }
  // Cap the allocation against the bytes actually present: dims*count f32s
  // must fit in what remains, so a forged header cannot demand gigabytes.
  if (dims * count > r.remaining() / 4) {
    return Status::Corrupted("storage: point set exceeds input size");
  }
  *out = ann::PointSet(dims, count);
  for (size_t i = 0; i < count; ++i) {
    float* row = out->row(i);
    for (size_t d = 0; d < dims; ++d) {
      if (!(s = r.GetF32(&row[d])).ok()) return s;
    }
  }
  return Status::Ok();
}

void PutBovw(ByteWriter& w, const bovw::BovwVector& v) {
  w.PutVarint(v.entries.size());
  for (const auto& [c, f] : v.entries) {
    w.PutVarint(c);
    w.PutVarint(f);
  }
}

Status GetBovw(ByteReader& r, bovw::BovwVector* out) {
  uint64_t n;
  Status s = r.GetVarint(&n);
  if (!s.ok()) return s;
  if (n > r.remaining() / 2) {
    return Status::Corrupted("storage: BoVW size exceeds input");
  }
  out->entries.resize(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t c = 0, f = 0;
    if (!(s = r.GetVarint(&c)).ok()) return s;
    if (!(s = r.GetVarint(&f)).ok()) return s;
    if (i > 0 && c <= prev) return Status::Corrupted("storage: BoVW not sorted");
    if (f == 0) return Status::Corrupted("storage: zero frequency");
    // Both fields narrow to 32 bits in memory; a varint whose high bits a
    // fault set would otherwise truncate silently to the same value.
    if (c > 0xFFFFFFFFull || f > 0xFFFFFFFFull) {
      return Status::Corrupted("storage: BoVW entry out of range");
    }
    prev = c;
    out->entries[i] = {static_cast<bovw::ClusterId>(c),
                       static_cast<uint32_t>(f)};
  }
  return Status::Ok();
}

// Tree nodes are written with a kind byte and ONLY the fields that kind
// uses: a leaf's split plane and an internal node's point span are dead
// state that search and the digest tree never read. Dead wire bytes would
// be bytes a storage fault can flip without any detectable consequence —
// keeping every serialized byte live is what lets the engine's update
// validation promise "any corruption of committed state is caught".
// (The per-tree max_leaf_size is likewise omitted: it is build-time
// metadata already present in the config header.)
void PutTree(ByteWriter& w, const ann::RkdTree& tree) {
  w.PutVarint(tree.nodes().size());
  for (const ann::RkdNode& n : tree.nodes()) {
    if (n.IsLeaf()) {
      w.PutU8(1);
      w.PutU32(static_cast<uint32_t>(n.begin));
      w.PutU32(static_cast<uint32_t>(n.end));
    } else {
      w.PutU8(0);
      w.PutU32(static_cast<uint32_t>(n.split_dim));
      w.PutF32(n.split_value);
      w.PutU32(static_cast<uint32_t>(n.left));
      w.PutU32(static_cast<uint32_t>(n.right));
    }
  }
  w.PutVarint(tree.point_indices().size());
  for (int32_t i : tree.point_indices()) {
    w.PutU32(static_cast<uint32_t>(i));
  }
}

Status GetTree(ByteReader& r, const ann::PointSet& points, int max_leaf,
               std::unique_ptr<ann::RkdTree>* out) {
  uint64_t num_nodes;
  Status s;
  if (!(s = r.GetVarint(&num_nodes)).ok()) return s;
  if (num_nodes > (1u << 27)) {
    return Status::Corrupted("storage: implausible tree shape");
  }
  // A leaf occupies 9 wire bytes (the smaller node kind); cap the
  // allocation against what is actually present before resizing.
  if (num_nodes > r.remaining() / 9) {
    return Status::Corrupted("storage: tree node count exceeds input size");
  }
  std::vector<ann::RkdNode> nodes(num_nodes);
  for (auto& n : nodes) {
    uint8_t kind = 0;
    uint32_t u = 0;
    float f = 0;
    if (!(s = r.GetU8(&kind)).ok()) return s;
    if (kind > 1) return Status::Corrupted("storage: bad tree node kind");
    if (kind == 1) {  // leaf: span only; RkdNode defaults mark it a leaf
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.begin = static_cast<int32_t>(u);
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.end = static_cast<int32_t>(u);
    } else {  // internal: split plane + children
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.split_dim = static_cast<int32_t>(u);
      if (!(s = r.GetF32(&f)).ok()) return s;
      n.split_value = f;
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.left = static_cast<int32_t>(u);
      if (!(s = r.GetU32(&u)).ok()) return s;
      n.right = static_cast<int32_t>(u);
    }
  }
  uint64_t num_indices;
  if (!(s = r.GetVarint(&num_indices)).ok()) return s;
  if (num_indices != points.size()) {
    return Status::Corrupted("storage: tree index count mismatch");
  }
  std::vector<int32_t> indices(num_indices);
  std::vector<bool> seen(points.size(), false);
  for (auto& i : indices) {
    uint32_t u = 0;
    if (!(s = r.GetU32(&u)).ok()) return s;
    if (u >= points.size() || seen[u]) {
      return Status::Corrupted("storage: tree indices not a permutation");
    }
    seen[u] = true;
    i = static_cast<int32_t>(u);
  }
  // Structural sanity: children in range, leaves with valid spans. Children
  // must additionally sit at strictly larger indices than their parent (the
  // builder's preorder layout guarantees this), which rules out cycles — a
  // forged cyclic tree would otherwise recurse forever during the digest
  // rebuild and every later traversal.
  for (size_t ni = 0; ni < nodes.size(); ++ni) {
    const auto& n = nodes[ni];
    if (n.IsLeaf()) {
      if (n.begin < 0 || n.end < n.begin ||
          static_cast<size_t>(n.end) > points.size()) {
        return Status::Corrupted("storage: bad leaf span");
      }
    } else {
      if (n.left < 0 || n.right < 0 ||
          static_cast<size_t>(n.left) >= nodes.size() ||
          static_cast<size_t>(n.right) >= nodes.size() ||
          static_cast<size_t>(n.left) <= ni ||
          static_cast<size_t>(n.right) <= ni ||
          n.split_dim < 0 || static_cast<size_t>(n.split_dim) >= points.dims()) {
        return Status::Corrupted("storage: bad internal node");
      }
    }
  }
  *out = std::make_unique<ann::RkdTree>(points, max_leaf, std::move(nodes),
                                        std::move(indices));
  return Status::Ok();
}

void PutBigInt(ByteWriter& w, const crypto::BigInt& v) {
  w.PutBlob(v.ToBytes());
}

Status GetBigInt(ByteReader& r, crypto::BigInt* out) {
  Bytes b;
  Status s = r.GetBlob(&b);
  if (!s.ok()) return s;
  if (b.size() > 4096) return Status::Corrupted("storage: absurd bigint");
  *out = crypto::BigInt::FromBytes(b);
  return Status::Ok();
}

}  // namespace

Bytes SerializeSpPackage(const core::SpPackage& package) {
  ByteWriter w;
  w.PutU32(kPackageMagic);
  w.PutU32(kFormatVersion);
  PutConfig(w, package.config);
  PutPointSet(w, package.codebook);

  w.PutVarint(package.corpus.size());
  for (const auto& [id, v] : package.corpus) {
    w.PutVarint(id);
    PutBovw(w, v);
  }

  w.PutVarint(package.image_data.size());
  for (const auto& [id, data] : package.image_data) {
    w.PutVarint(id);
    w.PutBlob(data);
    auto sig = package.image_signatures.find(id);
    w.PutBlob(sig == package.image_signatures.end() ? Bytes{} : sig->second);
  }

  // Cluster weights are part of the committed state (frozen across
  // incremental updates), so they are stored rather than re-derived.
  w.PutVarint(package.codebook.size());
  for (size_t c = 0; c < package.codebook.size(); ++c) {
    double weight = package.config.freq_grouped
                        ? package.fg_index->list(static_cast<bovw::ClusterId>(c)).weight
                        : package.inv_index->list(static_cast<bovw::ClusterId>(c)).weight;
    w.PutF64(weight);
  }

  // The shared cuckoo-filter geometry is committed state too: it was sized
  // from the longest list at build time and stays frozen across incremental
  // updates, so a reload must NOT re-derive it from the (possibly grown)
  // current lists — that would change every theta digest and the root.
  const cuckoo::CuckooParams& geo = package.config.freq_grouped
                                        ? package.fg_index->filter_params()
                                        : package.inv_index->filter_params();
  w.PutU32(geo.num_buckets);
  w.PutU32(geo.slots_per_bucket);
  w.PutU32(geo.max_kicks);

  w.PutVarint(package.mrkd_trees.size());
  for (const auto& tree : package.forest->trees()) {
    PutTree(w, *tree);
  }
  Bytes out = w.Take();
  // Robustness-test hook: when the fault injector arms the
  // storage.serialize.* sites, the emitted bytes are bit-flipped or
  // truncated here — the load path (which re-derives every digest) must
  // turn any such corruption into kCorrupted, never a crash or a silently
  // wrong package. No-op (one relaxed load) when nothing is armed.
  fault::InjectByteFaults(&out);
  return out;
}

Result<std::unique_ptr<core::SpPackage>> DeserializeSpPackage(const Bytes& data) {
  ByteReader r(data);
  uint32_t magic = 0, version = 0;
  Status s;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kPackageMagic) {
    return Status::Corrupted("storage: bad package magic");
  }
  if (!(s = r.GetU32(&version)).ok()) return s;
  if (version != kFormatVersion) {
    return Status::Corrupted("storage: unknown version");
  }

  auto pkg = std::make_unique<core::SpPackage>();
  if (!(s = GetConfig(r, &pkg->config)).ok()) return s;
  if (!(s = GetPointSet(r, &pkg->codebook)).ok()) return s;

  uint64_t n;
  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > r.remaining() / 2) {
    return Status::Corrupted("storage: corpus size exceeds input");
  }
  pkg->corpus.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    if (!(s = r.GetVarint(&id)).ok()) return s;
    pkg->corpus[i].first = id;
    if (!(s = GetBovw(r, &pkg->corpus[i].second)).ok()) return s;
  }

  if (!(s = r.GetVarint(&n)).ok()) return s;
  // id + empty blob + empty signature = 3 wire bytes minimum per image.
  if (n > r.remaining() / 3) {
    return Status::Corrupted("storage: image count exceeds input size");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    Bytes blob, sig;
    if (!(s = r.GetVarint(&id)).ok()) return s;
    if (!(s = r.GetBlob(&blob)).ok()) return s;
    if (!(s = r.GetBlob(&sig)).ok()) return s;
    pkg->image_data[id] = std::move(blob);
    if (!sig.empty()) pkg->image_signatures[id] = std::move(sig);
  }

  // Rebuild the index deterministically from the stored corpus and the
  // stored (possibly frozen) weights — the digests are pure functions of
  // that data. Then attach the stored tree shapes.
  uint64_t num_weights;
  if (!(s = r.GetVarint(&num_weights)).ok()) return s;
  if (num_weights != pkg->codebook.size()) {
    return Status::Corrupted("storage: weight count mismatch");
  }
  std::vector<double> raw_weights(num_weights);
  for (auto& weight : raw_weights) {
    if (!(s = r.GetF64(&weight)).ok()) return s;
  }
  bovw::ClusterWeights weights = bovw::ClusterWeights::FromRaw(std::move(raw_weights));

  // The stored filter geometry (frozen at the original build; see the
  // serializer above). Validated before use: num_buckets must be a power of
  // two for XOR partial-key hashing, and the table allocation
  // (num_buckets * slots_per_bucket) is capped so a forged header cannot
  // demand gigabytes.
  cuckoo::CuckooParams geo;
  geo.fingerprint_bits = pkg->config.fingerprint_bits;
  geo.seed = pkg->config.filter_seed;
  if (!(s = r.GetU32(&geo.num_buckets)).ok()) return s;
  if (!(s = r.GetU32(&geo.slots_per_bucket)).ok()) return s;
  if (!(s = r.GetU32(&geo.max_kicks)).ok()) return s;
  if (geo.num_buckets == 0 || (geo.num_buckets & (geo.num_buckets - 1)) != 0 ||
      geo.num_buckets > (1u << 26)) {
    return Status::Corrupted("storage: filter bucket count not a small power of two");
  }
  if (geo.slots_per_bucket == 0 || geo.slots_per_bucket > 16 ||
      geo.max_kicks == 0 || geo.max_kicks > 100000) {
    return Status::Corrupted("storage: implausible filter geometry");
  }

  if (pkg->config.freq_grouped) {
    pkg->fg_index = std::make_unique<freqgroup::FgInvertedIndex>(
        freqgroup::FgInvertedIndex::Build(
            pkg->codebook.size(), pkg->corpus, weights,
            pkg->config.with_filters, pkg->config.fingerprint_bits,
            pkg->config.filter_seed, geo));
    pkg->list_digests = pkg->fg_index->ListDigests();
  } else {
    pkg->inv_index = std::make_unique<invindex::MerkleInvertedIndex>(
        invindex::MerkleInvertedIndex::Build(
            pkg->codebook.size(), pkg->corpus, weights,
            pkg->config.with_filters, pkg->config.fingerprint_bits,
            pkg->config.filter_seed, geo));
    pkg->list_digests = pkg->inv_index->ListDigests();
  }

  uint64_t num_trees;
  if (!(s = r.GetVarint(&num_trees)).ok()) return s;
  if (num_trees != static_cast<uint64_t>(pkg->config.forest.num_trees)) {
    return Status::Corrupted("storage: tree count does not match config");
  }
  // The forest wrapper owns the trees; rebuild it around the stored shapes.
  pkg->forest = std::make_unique<ann::RkdForest>(pkg->codebook,
                                                 pkg->config.forest);
  // Replace the freshly built trees with the persisted structures so node
  // layouts (and therefore digests) match the owner's signature even if
  // the standard library's partition order ever changes.
  std::vector<std::unique_ptr<ann::RkdTree>> trees;
  for (uint64_t i = 0; i < num_trees; ++i) {
    std::unique_ptr<ann::RkdTree> tree;
    if (!(s = GetTree(r, pkg->codebook, pkg->config.forest.max_leaf_size,
                      &tree))
             .ok()) {
      return s;
    }
    trees.push_back(std::move(tree));
  }
  pkg->forest->ReplaceTrees(std::move(trees));

  for (const auto& tree : pkg->forest->trees()) {
    pkg->mrkd_trees.push_back(std::make_unique<mrkd::MrkdTree>(
        tree.get(), pkg->config.reveal_mode, pkg->list_digests));
  }
  if (!r.AtEnd()) return Status::Corrupted("storage: trailing bytes");
  return pkg;
}

Bytes SerializePublicParams(const core::PublicParams& params) {
  ByteWriter w;
  w.PutU32(kParamsMagic);
  w.PutU32(kFormatVersion);
  PutConfig(w, params.config);
  PutBigInt(w, params.public_key.n);
  PutBigInt(w, params.public_key.e);
  w.PutBlob(params.root_signature);
  w.PutVarint(params.dims);
  w.PutVarint(params.num_clusters);
  return w.Take();
}

Result<core::PublicParams> DeserializePublicParams(const Bytes& data) {
  ByteReader r(data);
  uint32_t magic = 0, version = 0;
  Status s;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kParamsMagic) return Status::Corrupted("storage: bad params magic");
  if (!(s = r.GetU32(&version)).ok()) return s;
  if (version != kFormatVersion) {
    return Status::Corrupted("storage: unknown version");
  }
  core::PublicParams params;
  if (!(s = GetConfig(r, &params.config)).ok()) return s;
  if (!(s = GetBigInt(r, &params.public_key.n)).ok()) return s;
  if (!(s = GetBigInt(r, &params.public_key.e)).ok()) return s;
  if (!(s = r.GetBlob(&params.root_signature)).ok()) return s;
  uint64_t v;
  if (!(s = r.GetVarint(&v)).ok()) return s;
  params.dims = v;
  if (!(s = r.GetVarint(&v)).ok()) return s;
  params.num_clusters = v;
  if (!r.AtEnd()) return Status::Corrupted("storage: trailing bytes");
  return params;
}

namespace {

Status WriteFile(const std::string& path, const Bytes& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::Error("storage: cannot open for writing: " + path);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::Error("storage: short write");
  return Status::Ok();
}

Status ReadFile(const std::string& path, Bytes* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Error("storage: cannot open for reading: " + path);
  out->clear();
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return Status::Ok();
}

}  // namespace

Status SaveSpPackage(const std::string& path, const core::SpPackage& package) {
  return WriteFile(path, SerializeSpPackage(package));
}

Result<std::unique_ptr<core::SpPackage>> LoadSpPackage(const std::string& path) {
  Bytes data;
  Status s = ReadFile(path, &data);
  if (!s.ok()) return s;
  return DeserializeSpPackage(data);
}

Status SavePublicParams(const std::string& path,
                        const core::PublicParams& params) {
  return WriteFile(path, SerializePublicParams(params));
}

Result<core::PublicParams> LoadPublicParams(const std::string& path) {
  Bytes data;
  Status s = ReadFile(path, &data);
  if (!s.ok()) return s;
  return DeserializePublicParams(data);
}

}  // namespace imageproof::storage
