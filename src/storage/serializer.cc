#include "storage/serializer.h"

#include <cstdio>

#include "common/fault.h"
#include "storage/file_io.h"
#include "storage/format.h"

namespace imageproof::storage {

namespace {

constexpr uint32_t kPackageMagic = 0x49505031;  // "IPP1"
constexpr uint32_t kParamsMagic = 0x49505042;   // "IPPB"
constexpr uint32_t kFormatVersion = 1;

}  // namespace

Bytes SerializeSpPackage(const core::SpPackage& package) {
  ByteWriter w;
  w.PutU32(kPackageMagic);
  w.PutU32(kFormatVersion);
  PutConfig(w, package.config);
  PutPointSet(w, package.codebook);

  w.PutVarint(package.corpus.size());
  for (const auto& [id, v] : package.corpus) {
    w.PutVarint(id);
    PutBovw(w, v);
  }

  // Image payloads go through the package's uniform accessor so a
  // disk-backed package (storage/package_store.h) serializes identically to
  // an in-memory one — each mmap'd payload is integrity-checked as it is
  // read. A payload that fails its digest corrupts the whole serialization,
  // which the caller's round-trip validation then rejects.
  w.PutVarint(package.NumImages());
  Status img = package.ForEachImage(
      [&w](bovw::ImageId id, BytesView data, BytesView sig) {
        w.PutVarint(id);
        w.PutVarint(data.size);
        w.PutBytes(data.data, data.size);
        w.PutVarint(sig.size);
        w.PutBytes(sig.data, sig.size);
        return Status::Ok();
      });
  if (!img.ok()) {
    // Poison the stream deterministically: a failed payload read must not
    // produce bytes that parse as a valid (smaller) package.
    w.PutU32(0xDEADC0DE);
  }

  // Cluster weights are part of the committed state (frozen across
  // incremental updates), so they are stored rather than re-derived.
  w.PutVarint(package.codebook.size());
  for (size_t c = 0; c < package.codebook.size(); ++c) {
    double weight = package.config.freq_grouped
                        ? package.fg_index->list(static_cast<bovw::ClusterId>(c)).weight
                        : package.inv_index->list(static_cast<bovw::ClusterId>(c)).weight;
    w.PutF64(weight);
  }

  // The shared cuckoo-filter geometry is committed state too: it was sized
  // from the longest list at build time and stays frozen across incremental
  // updates, so a reload must NOT re-derive it from the (possibly grown)
  // current lists — that would change every theta digest and the root.
  const cuckoo::CuckooParams& geo = package.config.freq_grouped
                                        ? package.fg_index->filter_params()
                                        : package.inv_index->filter_params();
  PutFilterGeometry(w, geo);

  w.PutVarint(package.mrkd_trees.size());
  for (const auto& tree : package.forest->trees()) {
    PutTree(w, *tree);
  }
  Bytes out = w.Take();
  // Robustness-test hook: when the fault injector arms the
  // storage.serialize.* sites, the emitted bytes are bit-flipped or
  // truncated here — the load path (which re-derives every digest) must
  // turn any such corruption into kCorrupted, never a crash or a silently
  // wrong package. No-op (one relaxed load) when nothing is armed.
  fault::InjectByteFaults(&out);
  return out;
}

Result<std::unique_ptr<core::SpPackage>> DeserializeSpPackage(const Bytes& data) {
  ByteReader r(data);
  uint32_t magic = 0, version = 0;
  Status s;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kPackageMagic) {
    return Status::Corrupted("storage: bad package magic");
  }
  if (!(s = r.GetU32(&version)).ok()) return s;
  if (version != kFormatVersion) {
    return Status::Corrupted("storage: unknown version");
  }

  auto pkg = std::make_unique<core::SpPackage>();
  if (!(s = GetConfig(r, &pkg->config)).ok()) return s;
  if (!(s = GetPointSet(r, &pkg->codebook)).ok()) return s;

  uint64_t n;
  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > r.remaining() / 2) {
    return Status::Corrupted("storage: corpus size exceeds input");
  }
  pkg->corpus.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    if (!(s = r.GetVarint(&id)).ok()) return s;
    pkg->corpus[i].first = id;
    if (!(s = GetBovw(r, &pkg->corpus[i].second)).ok()) return s;
  }

  if (!(s = r.GetVarint(&n)).ok()) return s;
  // id + empty blob + empty signature = 3 wire bytes minimum per image.
  if (n > r.remaining() / 3) {
    return Status::Corrupted("storage: image count exceeds input size");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    Bytes blob, sig;
    if (!(s = r.GetVarint(&id)).ok()) return s;
    if (!(s = r.GetBlob(&blob)).ok()) return s;
    if (!(s = r.GetBlob(&sig)).ok()) return s;
    pkg->image_data[id] = std::move(blob);
    if (!sig.empty()) pkg->image_signatures[id] = std::move(sig);
  }

  // Rebuild the index deterministically from the stored corpus and the
  // stored (possibly frozen) weights — the digests are pure functions of
  // that data. Then attach the stored tree shapes.
  uint64_t num_weights;
  if (!(s = r.GetVarint(&num_weights)).ok()) return s;
  if (num_weights != pkg->codebook.size()) {
    return Status::Corrupted("storage: weight count mismatch");
  }
  std::vector<double> raw_weights(num_weights);
  for (auto& weight : raw_weights) {
    if (!(s = r.GetF64(&weight)).ok()) return s;
  }
  bovw::ClusterWeights weights = bovw::ClusterWeights::FromRaw(std::move(raw_weights));

  // The stored filter geometry (frozen at the original build; see the
  // serializer above), validated by the shared codec before use.
  cuckoo::CuckooParams geo;
  geo.fingerprint_bits = pkg->config.fingerprint_bits;
  geo.seed = pkg->config.filter_seed;
  if (!(s = GetFilterGeometry(r, &geo)).ok()) return s;

  if (pkg->config.freq_grouped) {
    pkg->fg_index = std::make_unique<freqgroup::FgInvertedIndex>(
        freqgroup::FgInvertedIndex::Build(
            pkg->codebook.size(), pkg->corpus, weights,
            pkg->config.with_filters, pkg->config.fingerprint_bits,
            pkg->config.filter_seed, geo));
    pkg->list_digests = pkg->fg_index->ListDigests();
  } else {
    pkg->inv_index = std::make_unique<invindex::MerkleInvertedIndex>(
        invindex::MerkleInvertedIndex::Build(
            pkg->codebook.size(), pkg->corpus, weights,
            pkg->config.with_filters, pkg->config.fingerprint_bits,
            pkg->config.filter_seed, geo));
    pkg->list_digests = pkg->inv_index->ListDigests();
  }

  uint64_t num_trees;
  if (!(s = r.GetVarint(&num_trees)).ok()) return s;
  if (num_trees != static_cast<uint64_t>(pkg->config.forest.num_trees)) {
    return Status::Corrupted("storage: tree count does not match config");
  }
  // The forest wrapper owns the trees; rebuild it around the stored shapes.
  pkg->forest = std::make_unique<ann::RkdForest>(pkg->codebook,
                                                 pkg->config.forest);
  // Replace the freshly built trees with the persisted structures so node
  // layouts (and therefore digests) match the owner's signature even if
  // the standard library's partition order ever changes.
  std::vector<std::unique_ptr<ann::RkdTree>> trees;
  for (uint64_t i = 0; i < num_trees; ++i) {
    std::unique_ptr<ann::RkdTree> tree;
    if (!(s = GetTree(r, pkg->codebook, pkg->config.forest.max_leaf_size,
                      &tree))
             .ok()) {
      return s;
    }
    trees.push_back(std::move(tree));
  }
  pkg->forest->ReplaceTrees(std::move(trees));

  for (const auto& tree : pkg->forest->trees()) {
    pkg->mrkd_trees.push_back(std::make_unique<mrkd::MrkdTree>(
        tree.get(), pkg->config.reveal_mode, pkg->list_digests));
  }
  if (!r.AtEnd()) return Status::Corrupted("storage: trailing bytes");
  return pkg;
}

Bytes SerializePublicParams(const core::PublicParams& params) {
  ByteWriter w;
  w.PutU32(kParamsMagic);
  w.PutU32(kFormatVersion);
  PutConfig(w, params.config);
  PutBigInt(w, params.public_key.n);
  PutBigInt(w, params.public_key.e);
  w.PutBlob(params.root_signature);
  w.PutVarint(params.dims);
  w.PutVarint(params.num_clusters);
  return w.Take();
}

Result<core::PublicParams> DeserializePublicParams(const Bytes& data) {
  ByteReader r(data);
  uint32_t magic = 0, version = 0;
  Status s;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kParamsMagic) return Status::Corrupted("storage: bad params magic");
  if (!(s = r.GetU32(&version)).ok()) return s;
  if (version != kFormatVersion) {
    return Status::Corrupted("storage: unknown version");
  }
  core::PublicParams params;
  if (!(s = GetConfig(r, &params.config)).ok()) return s;
  if (!(s = GetBigInt(r, &params.public_key.n)).ok()) return s;
  if (!(s = GetBigInt(r, &params.public_key.e)).ok()) return s;
  if (!(s = r.GetBlob(&params.root_signature)).ok()) return s;
  uint64_t v;
  if (!(s = r.GetVarint(&v)).ok()) return s;
  params.dims = v;
  if (!(s = r.GetVarint(&v)).ok()) return s;
  params.num_clusters = v;
  if (!r.AtEnd()) return Status::Corrupted("storage: trailing bytes");
  return params;
}

Status SaveSpPackage(const std::string& path, const core::SpPackage& package) {
  return AtomicWriteFile(path, SerializeSpPackage(package));
}

Result<std::unique_ptr<core::SpPackage>> LoadSpPackage(const std::string& path) {
  Bytes data;
  Status s = ReadFileBytes(path, &data);
  if (!s.ok()) return s;
  return DeserializeSpPackage(data);
}

Status SavePublicParams(const std::string& path,
                        const core::PublicParams& params) {
  return AtomicWriteFile(path, SerializePublicParams(params));
}

Result<core::PublicParams> LoadPublicParams(const std::string& path) {
  Bytes data;
  Status s = ReadFileBytes(path, &data);
  if (!s.ok()) return s;
  return DeserializePublicParams(data);
}

}  // namespace imageproof::storage
