#include "storage/serializer.h"

#include <cstdio>

namespace imageproof::storage {

namespace {

constexpr uint32_t kPackageMagic = 0x49505031;  // "IPP1"
constexpr uint32_t kParamsMagic = 0x49505042;   // "IPPB"
constexpr uint32_t kFormatVersion = 1;

void PutConfig(ByteWriter& w, const core::Config& c) {
  w.PutU32(static_cast<uint32_t>(c.forest.num_trees));
  w.PutU32(static_cast<uint32_t>(c.forest.max_leaf_size));
  w.PutU32(static_cast<uint32_t>(c.forest.max_leaf_checks));
  w.PutU64(c.forest.seed);
  w.PutU8(c.share_nodes ? 1 : 0);
  w.PutU8(static_cast<uint8_t>(c.reveal_mode));
  w.PutU8(c.with_filters ? 1 : 0);
  w.PutU8(c.freq_grouped ? 1 : 0);
  w.PutU32(c.fingerprint_bits);
  w.PutU64(c.filter_seed);
  w.PutU64(c.check_batch);
  w.PutU32(static_cast<uint32_t>(c.rsa_bits));
  w.PutU8(c.sign_images ? 1 : 0);
}

Status GetConfig(ByteReader& r, core::Config* c) {
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  uint8_t u8 = 0;
  Status s;
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.num_trees = static_cast<int>(u32);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.max_leaf_size = static_cast<int>(u32);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->forest.max_leaf_checks = static_cast<int>(u32);
  if (!(s = r.GetU64(&c->forest.seed)).ok()) return s;
  if (!(s = r.GetU8(&u8)).ok()) return s;
  c->share_nodes = u8 != 0;
  if (!(s = r.GetU8(&u8)).ok()) return s;
  if (u8 > 1) return Status::Error("storage: bad reveal mode");
  c->reveal_mode = static_cast<mrkd::RevealMode>(u8);
  if (!(s = r.GetU8(&u8)).ok()) return s;
  c->with_filters = u8 != 0;
  if (!(s = r.GetU8(&u8)).ok()) return s;
  c->freq_grouped = u8 != 0;
  if (!(s = r.GetU32(&c->fingerprint_bits)).ok()) return s;
  if (!(s = r.GetU64(&c->filter_seed)).ok()) return s;
  if (!(s = r.GetU64(&u64)).ok()) return s;
  c->check_batch = static_cast<size_t>(u64);
  if (!(s = r.GetU32(&u32)).ok()) return s;
  c->rsa_bits = static_cast<int>(u32);
  if (!(s = r.GetU8(&u8)).ok()) return s;
  c->sign_images = u8 != 0;
  if (c->forest.num_trees <= 0 || c->forest.num_trees > 256 ||
      c->forest.max_leaf_size <= 0) {
    return Status::Error("storage: implausible forest parameters");
  }
  return Status::Ok();
}

void PutPointSet(ByteWriter& w, const ann::PointSet& points) {
  w.PutVarint(points.dims());
  w.PutVarint(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const float* row = points.row(i);
    for (size_t d = 0; d < points.dims(); ++d) w.PutF32(row[d]);
  }
}

Status GetPointSet(ByteReader& r, ann::PointSet* out) {
  uint64_t dims, count;
  Status s;
  if (!(s = r.GetVarint(&dims)).ok()) return s;
  if (!(s = r.GetVarint(&count)).ok()) return s;
  if (dims == 0 || dims > 4096 || count > (1u << 26)) {
    return Status::Error("storage: implausible point set shape");
  }
  *out = ann::PointSet(dims, count);
  for (size_t i = 0; i < count; ++i) {
    float* row = out->row(i);
    for (size_t d = 0; d < dims; ++d) {
      if (!(s = r.GetF32(&row[d])).ok()) return s;
    }
  }
  return Status::Ok();
}

void PutBovw(ByteWriter& w, const bovw::BovwVector& v) {
  w.PutVarint(v.entries.size());
  for (const auto& [c, f] : v.entries) {
    w.PutVarint(c);
    w.PutVarint(f);
  }
}

Status GetBovw(ByteReader& r, bovw::BovwVector* out) {
  uint64_t n;
  Status s = r.GetVarint(&n);
  if (!s.ok()) return s;
  if (n > r.remaining() / 2) {
    return Status::Error("storage: BoVW size exceeds input");
  }
  out->entries.resize(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t c = 0, f = 0;
    if (!(s = r.GetVarint(&c)).ok()) return s;
    if (!(s = r.GetVarint(&f)).ok()) return s;
    if (i > 0 && c <= prev) return Status::Error("storage: BoVW not sorted");
    if (f == 0) return Status::Error("storage: zero frequency");
    prev = c;
    out->entries[i] = {static_cast<bovw::ClusterId>(c),
                       static_cast<uint32_t>(f)};
  }
  return Status::Ok();
}

void PutTree(ByteWriter& w, const ann::RkdTree& tree) {
  w.PutVarint(tree.max_leaf_size());
  w.PutVarint(tree.nodes().size());
  for (const ann::RkdNode& n : tree.nodes()) {
    w.PutU32(static_cast<uint32_t>(n.split_dim));
    w.PutF32(n.split_value);
    w.PutU32(static_cast<uint32_t>(n.left));
    w.PutU32(static_cast<uint32_t>(n.right));
    w.PutU32(static_cast<uint32_t>(n.begin));
    w.PutU32(static_cast<uint32_t>(n.end));
  }
  w.PutVarint(tree.point_indices().size());
  for (int32_t i : tree.point_indices()) {
    w.PutU32(static_cast<uint32_t>(i));
  }
}

Status GetTree(ByteReader& r, const ann::PointSet& points,
               std::unique_ptr<ann::RkdTree>* out) {
  uint64_t max_leaf, num_nodes;
  Status s;
  if (!(s = r.GetVarint(&max_leaf)).ok()) return s;
  if (!(s = r.GetVarint(&num_nodes)).ok()) return s;
  if (max_leaf == 0 || num_nodes > (1u << 27)) {
    return Status::Error("storage: implausible tree shape");
  }
  std::vector<ann::RkdNode> nodes(num_nodes);
  for (auto& n : nodes) {
    uint32_t u = 0;
    float f = 0;
    if (!(s = r.GetU32(&u)).ok()) return s;
    n.split_dim = static_cast<int32_t>(u);
    if (!(s = r.GetF32(&f)).ok()) return s;
    n.split_value = f;
    if (!(s = r.GetU32(&u)).ok()) return s;
    n.left = static_cast<int32_t>(u);
    if (!(s = r.GetU32(&u)).ok()) return s;
    n.right = static_cast<int32_t>(u);
    if (!(s = r.GetU32(&u)).ok()) return s;
    n.begin = static_cast<int32_t>(u);
    if (!(s = r.GetU32(&u)).ok()) return s;
    n.end = static_cast<int32_t>(u);
  }
  uint64_t num_indices;
  if (!(s = r.GetVarint(&num_indices)).ok()) return s;
  if (num_indices != points.size()) {
    return Status::Error("storage: tree index count mismatch");
  }
  std::vector<int32_t> indices(num_indices);
  std::vector<bool> seen(points.size(), false);
  for (auto& i : indices) {
    uint32_t u = 0;
    if (!(s = r.GetU32(&u)).ok()) return s;
    if (u >= points.size() || seen[u]) {
      return Status::Error("storage: tree indices not a permutation");
    }
    seen[u] = true;
    i = static_cast<int32_t>(u);
  }
  // Structural sanity: children in range, leaves with valid spans.
  for (const auto& n : nodes) {
    if (n.IsLeaf()) {
      if (n.begin < 0 || n.end < n.begin ||
          static_cast<size_t>(n.end) > points.size()) {
        return Status::Error("storage: bad leaf span");
      }
    } else {
      if (n.left < 0 || n.right < 0 ||
          static_cast<size_t>(n.left) >= nodes.size() ||
          static_cast<size_t>(n.right) >= nodes.size() ||
          n.split_dim < 0 || static_cast<size_t>(n.split_dim) >= points.dims()) {
        return Status::Error("storage: bad internal node");
      }
    }
  }
  *out = std::make_unique<ann::RkdTree>(points, static_cast<int>(max_leaf),
                                        std::move(nodes), std::move(indices));
  return Status::Ok();
}

void PutBigInt(ByteWriter& w, const crypto::BigInt& v) {
  w.PutBlob(v.ToBytes());
}

Status GetBigInt(ByteReader& r, crypto::BigInt* out) {
  Bytes b;
  Status s = r.GetBlob(&b);
  if (!s.ok()) return s;
  if (b.size() > 4096) return Status::Error("storage: absurd bigint");
  *out = crypto::BigInt::FromBytes(b);
  return Status::Ok();
}

}  // namespace

Bytes SerializeSpPackage(const core::SpPackage& package) {
  ByteWriter w;
  w.PutU32(kPackageMagic);
  w.PutU32(kFormatVersion);
  PutConfig(w, package.config);
  PutPointSet(w, package.codebook);

  w.PutVarint(package.corpus.size());
  for (const auto& [id, v] : package.corpus) {
    w.PutVarint(id);
    PutBovw(w, v);
  }

  w.PutVarint(package.image_data.size());
  for (const auto& [id, data] : package.image_data) {
    w.PutVarint(id);
    w.PutBlob(data);
    auto sig = package.image_signatures.find(id);
    w.PutBlob(sig == package.image_signatures.end() ? Bytes{} : sig->second);
  }

  // Cluster weights are part of the committed state (frozen across
  // incremental updates), so they are stored rather than re-derived.
  w.PutVarint(package.codebook.size());
  for (size_t c = 0; c < package.codebook.size(); ++c) {
    double weight = package.config.freq_grouped
                        ? package.fg_index->list(static_cast<bovw::ClusterId>(c)).weight
                        : package.inv_index->list(static_cast<bovw::ClusterId>(c)).weight;
    w.PutF64(weight);
  }

  w.PutVarint(package.mrkd_trees.size());
  for (const auto& tree : package.forest->trees()) {
    PutTree(w, *tree);
  }
  return w.Take();
}

Result<std::unique_ptr<core::SpPackage>> DeserializeSpPackage(const Bytes& data) {
  ByteReader r(data);
  uint32_t magic = 0, version = 0;
  Status s;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kPackageMagic) return Status::Error("storage: bad package magic");
  if (!(s = r.GetU32(&version)).ok()) return s;
  if (version != kFormatVersion) return Status::Error("storage: unknown version");

  auto pkg = std::make_unique<core::SpPackage>();
  if (!(s = GetConfig(r, &pkg->config)).ok()) return s;
  if (!(s = GetPointSet(r, &pkg->codebook)).ok()) return s;

  uint64_t n;
  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > r.remaining() / 2) {
    return Status::Error("storage: corpus size exceeds input");
  }
  pkg->corpus.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    if (!(s = r.GetVarint(&id)).ok()) return s;
    pkg->corpus[i].first = id;
    if (!(s = GetBovw(r, &pkg->corpus[i].second)).ok()) return s;
  }

  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > (1u << 26)) return Status::Error("storage: absurd image count");
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    Bytes blob, sig;
    if (!(s = r.GetVarint(&id)).ok()) return s;
    if (!(s = r.GetBlob(&blob)).ok()) return s;
    if (!(s = r.GetBlob(&sig)).ok()) return s;
    pkg->image_data[id] = std::move(blob);
    if (!sig.empty()) pkg->image_signatures[id] = std::move(sig);
  }

  // Rebuild the index deterministically from the stored corpus and the
  // stored (possibly frozen) weights — the digests are pure functions of
  // that data. Then attach the stored tree shapes.
  uint64_t num_weights;
  if (!(s = r.GetVarint(&num_weights)).ok()) return s;
  if (num_weights != pkg->codebook.size()) {
    return Status::Error("storage: weight count mismatch");
  }
  std::vector<double> raw_weights(num_weights);
  for (auto& weight : raw_weights) {
    if (!(s = r.GetF64(&weight)).ok()) return s;
  }
  bovw::ClusterWeights weights = bovw::ClusterWeights::FromRaw(std::move(raw_weights));
  if (pkg->config.freq_grouped) {
    pkg->fg_index = std::make_unique<freqgroup::FgInvertedIndex>(
        freqgroup::FgInvertedIndex::Build(
            pkg->codebook.size(), pkg->corpus, weights,
            pkg->config.with_filters, pkg->config.fingerprint_bits,
            pkg->config.filter_seed));
    pkg->list_digests = pkg->fg_index->ListDigests();
  } else {
    pkg->inv_index = std::make_unique<invindex::MerkleInvertedIndex>(
        invindex::MerkleInvertedIndex::Build(
            pkg->codebook.size(), pkg->corpus, weights,
            pkg->config.with_filters, pkg->config.fingerprint_bits,
            pkg->config.filter_seed));
    pkg->list_digests = pkg->inv_index->ListDigests();
  }

  uint64_t num_trees;
  if (!(s = r.GetVarint(&num_trees)).ok()) return s;
  if (num_trees != static_cast<uint64_t>(pkg->config.forest.num_trees)) {
    return Status::Error("storage: tree count does not match config");
  }
  // The forest wrapper owns the trees; rebuild it around the stored shapes.
  pkg->forest = std::make_unique<ann::RkdForest>(pkg->codebook,
                                                 pkg->config.forest);
  // Replace the freshly built trees with the persisted structures so node
  // layouts (and therefore digests) match the owner's signature even if
  // the standard library's partition order ever changes.
  std::vector<std::unique_ptr<ann::RkdTree>> trees;
  for (uint64_t i = 0; i < num_trees; ++i) {
    std::unique_ptr<ann::RkdTree> tree;
    if (!(s = GetTree(r, pkg->codebook, &tree)).ok()) return s;
    trees.push_back(std::move(tree));
  }
  pkg->forest->ReplaceTrees(std::move(trees));

  for (const auto& tree : pkg->forest->trees()) {
    pkg->mrkd_trees.push_back(std::make_unique<mrkd::MrkdTree>(
        tree.get(), pkg->config.reveal_mode, pkg->list_digests));
  }
  if (!r.AtEnd()) return Status::Error("storage: trailing bytes");
  return pkg;
}

Bytes SerializePublicParams(const core::PublicParams& params) {
  ByteWriter w;
  w.PutU32(kParamsMagic);
  w.PutU32(kFormatVersion);
  PutConfig(w, params.config);
  PutBigInt(w, params.public_key.n);
  PutBigInt(w, params.public_key.e);
  w.PutBlob(params.root_signature);
  w.PutVarint(params.dims);
  w.PutVarint(params.num_clusters);
  return w.Take();
}

Result<core::PublicParams> DeserializePublicParams(const Bytes& data) {
  ByteReader r(data);
  uint32_t magic = 0, version = 0;
  Status s;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kParamsMagic) return Status::Error("storage: bad params magic");
  if (!(s = r.GetU32(&version)).ok()) return s;
  if (version != kFormatVersion) return Status::Error("storage: unknown version");
  core::PublicParams params;
  if (!(s = GetConfig(r, &params.config)).ok()) return s;
  if (!(s = GetBigInt(r, &params.public_key.n)).ok()) return s;
  if (!(s = GetBigInt(r, &params.public_key.e)).ok()) return s;
  if (!(s = r.GetBlob(&params.root_signature)).ok()) return s;
  uint64_t v;
  if (!(s = r.GetVarint(&v)).ok()) return s;
  params.dims = v;
  if (!(s = r.GetVarint(&v)).ok()) return s;
  params.num_clusters = v;
  if (!r.AtEnd()) return Status::Error("storage: trailing bytes");
  return params;
}

namespace {

Status WriteFile(const std::string& path, const Bytes& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::Error("storage: cannot open for writing: " + path);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::Error("storage: short write");
  return Status::Ok();
}

Status ReadFile(const std::string& path, Bytes* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Error("storage: cannot open for reading: " + path);
  out->clear();
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return Status::Ok();
}

}  // namespace

Status SaveSpPackage(const std::string& path, const core::SpPackage& package) {
  return WriteFile(path, SerializeSpPackage(package));
}

Result<std::unique_ptr<core::SpPackage>> LoadSpPackage(const std::string& path) {
  Bytes data;
  Status s = ReadFile(path, &data);
  if (!s.ok()) return s;
  return DeserializeSpPackage(data);
}

Status SavePublicParams(const std::string& path,
                        const core::PublicParams& params) {
  return WriteFile(path, SerializePublicParams(params));
}

Result<core::PublicParams> LoadPublicParams(const std::string& path) {
  Bytes data;
  Status s = ReadFile(path, &data);
  if (!s.ok()) return s;
  return DeserializePublicParams(data);
}

}  // namespace imageproof::storage
