// Persistence for a deployed ImageProof system.
//
// A real owner builds the ADSs once and ships them; the SP must be able to
// load the exact same structures from disk — *exact* meaning bit-identical
// digests, because the owner's signature covers the MRKD roots. The format
// therefore stores the tree shapes and posting orders verbatim (no
// rebuild-time randomness) and recomputes all digests on load, which doubles
// as an integrity check of the stored data against the re-derived roots.
//
// Layout: versioned magic header, then the Config, codebook, corpus, image
// payloads + signatures, per-tree structure, and the inverted index (plain
// or frequency-grouped). All encodings are the canonical ones from
// common/bytes.h.

#ifndef IMAGEPROOF_STORAGE_SERIALIZER_H_
#define IMAGEPROOF_STORAGE_SERIALIZER_H_

#include <memory>
#include <string>

#include "core/owner.h"

namespace imageproof::storage {

// Serializes the full SP package (everything the service provider hosts).
Bytes SerializeSpPackage(const core::SpPackage& package);

// Reconstructs a package; fails on malformed input. Digests (posting
// chains, filters, MRKD roots) are recomputed from the stored raw data.
Result<std::unique_ptr<core::SpPackage>> DeserializeSpPackage(const Bytes& data);

// Public parameters (what clients persist).
Bytes SerializePublicParams(const core::PublicParams& params);
Result<core::PublicParams> DeserializePublicParams(const Bytes& data);

// File convenience wrappers.
Status SaveSpPackage(const std::string& path, const core::SpPackage& package);
Result<std::unique_ptr<core::SpPackage>> LoadSpPackage(const std::string& path);
Status SavePublicParams(const std::string& path, const core::PublicParams& params);
Result<core::PublicParams> LoadPublicParams(const std::string& path);

}  // namespace imageproof::storage

#endif  // IMAGEPROOF_STORAGE_SERIALIZER_H_
