// Crash-safe file I/O primitives for the persistence layer.
//
// AtomicWriteFile implements the classic write-new-file + fsync +
// atomic-rename protocol: data lands in a temp file in the TARGET directory
// (rename(2) is only atomic within one filesystem), the file is fsync'd
// before the rename so the rename can never publish a name pointing at
// unwritten blocks, and the directory is fsync'd after so the new entry
// itself is durable. A crash at any step leaves either the old file intact
// or the complete new file — never a torn one; at worst a stale .tmp is
// left behind, which a later write of the same path removes.
//
// The fault injector (common/fault.h) hooks every step so the crash-safety
// suite (tests/crash_safety_test.cc) can simulate power failure at each
// point of the protocol:
//   storage.file.short_write   the temp write stops partway (torn write)
//   storage.file.fsync_fail    the data fsync reports failure
//   storage.file.rename_fail   the rename never happens
//
// MmapFile is the read side: an RAII read-only shared mapping used by
// storage/package_store.h to serve packages without loading them into
// anonymous memory. Pages fault in on first touch and remain evictable
// page cache, which is what keeps the resident set of a disk-backed
// deployment below the corpus size.

#ifndef IMAGEPROOF_STORAGE_FILE_IO_H_
#define IMAGEPROOF_STORAGE_FILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace imageproof::storage {

// Reads the whole file into memory. kError on open failure (missing files
// are an operational error, not corruption).
Status ReadFileBytes(const std::string& path, Bytes* out);

// Durably replaces `path` with `data` via temp + fsync + rename + dir
// fsync. On any failure the previous contents of `path` (if any) are
// untouched.
Status AtomicWriteFile(const std::string& path, const Bytes& data);

// Read-only shared mapping of a file. Movable, not copyable; unmaps on
// destruction. An empty file maps to a valid object with size() == 0.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  static Result<MmapFile> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr || size_ == 0; }

  // Advises the kernel that [offset, offset+len) will be accessed randomly
  // (disables readahead — used for the lazily-faulted image-blob region so
  // one payload access does not drag neighbouring pages in).
  void AdviseRandom(size_t offset, size_t len) const;

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace imageproof::storage

#endif  // IMAGEPROOF_STORAGE_FILE_IO_H_
