// Background housekeeping for an epoch directory: retain-last-N garbage
// collection of pkg-<epoch>.ipk files, plus a rate-limited scrubber that
// re-walks the digest chain of the epoch CURRENT names — triggering a
// rollback when the bytes on disk no longer match — and of every retained
// non-current epoch, so rollback candidates are known-good before rollback
// ever needs one (corrupt candidates are quarantined, nothing more).
//
// GC safety argument (the invariant, then why each rule preserves it):
// after any interleaving of GC with concurrent epoch publication, CURRENT
// names a file that exists and verifies.
//   1. Only epochs strictly below the newest `retain` are candidates —
//      recent epochs stay as rollback targets for the scrubber.
//   2. An epoch >= the CURRENT value read at scan time is never deleted:
//      a number above CURRENT may be a publication mid-flight (file
//      written, pointer flip pending) — deleting it would race the flip.
//   3. CURRENT is re-read immediately before each unlink and the unlink is
//      skipped if the pointer moved onto that epoch meanwhile. Together
//      with (2) this makes GC safe against a concurrent flip in either
//      direction — forward (normal publication) or onto any retained epoch
//      (operator intervention): the only way to lose the race would be a
//      flip onto an epoch below both the retain window and the CURRENT
//      value at scan time, i.e. onto a file old enough that rule 1 already
//      aged it out — and such a flip would be unserveable the moment GC
//      runs again, so the store never promises it.
//   4. A quarantine marker (pkg-<e>.ipk.quarantined) travels with its
//      file: deleted together, and a quarantined epoch is never a rollback
//      candidate.
//
// Scrub protocol: Scrub(CURRENT) re-hashes header, TOC, and all nine
// sections (including the lazily-faulted image blobs that open-time
// verification skips). On divergence the janitor (a) writes the
// quarantine marker for the epoch, (b) invokes the rollback callback —
// core::QueryEngine wires this to a re-publish of the newest verifiable
// prior epoch through its ordinary clone/verify/swap path — and counts
// both. The janitor itself never mutates CURRENT: rollback is the
// engine's atomic publication, or an operator's, never a side effect of
// scanning.
//
// Threading: Start() runs one background thread that alternates scrub and
// GC passes at `scrub_interval`; GcOnce()/ScrubOnce() are also callable
// directly (tests, tooling) and are safe concurrently with the thread —
// all state transitions go through atomics or the filesystem.

#ifndef IMAGEPROOF_STORAGE_EPOCH_JANITOR_H_
#define IMAGEPROOF_STORAGE_EPOCH_JANITOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace imageproof::storage {

struct JanitorOptions {
  std::string dir;
  // Keep the newest N epoch files (0 disables GC). When scrubbing is on
  // this is clamped to >= 2: rollback needs a prior epoch to exist.
  size_t retain_epochs = 0;
  // Cadence of the background thread (0 disables it; manual *Once() calls
  // still work).
  std::chrono::milliseconds scrub_interval{0};
  size_t scrub_bytes_per_sec = 0;  // pacing for Scrub; 0 = unthrottled
  bool scrub = true;               // false: background thread only GCs
};

struct JanitorStats {
  uint64_t gc_passes = 0;
  uint64_t epochs_deleted = 0;
  uint64_t scrub_passes = 0;
  uint64_t scrub_bytes = 0;
  uint64_t scrub_corruptions = 0;   // divergences detected
  uint64_t epochs_quarantined = 0;  // markers written
  uint64_t rollbacks_requested = 0;
  uint64_t rollbacks_failed = 0;  // callback returned an error
};

class EpochJanitor {
 public:
  // `on_corruption(corrupt_epoch)` runs on the janitor thread after the
  // epoch is quarantined; it must republish a verifiable epoch (or fail).
  // May be empty: detection + quarantine still happen.
  using RollbackFn = std::function<Status(uint64_t corrupt_epoch)>;

  EpochJanitor(JanitorOptions options, RollbackFn on_corruption);
  ~EpochJanitor();  // Stop()

  EpochJanitor(const EpochJanitor&) = delete;
  EpochJanitor& operator=(const EpochJanitor&) = delete;

  // Spawns the background thread (no-op when scrub_interval is 0).
  void Start();
  // Cancels any in-progress scrub and joins the thread. Idempotent.
  void Stop();

  // One GC pass; returns the number of epoch files deleted.
  Result<size_t> GcOnce();
  // One scrub pass: first the epoch CURRENT names, then every retained,
  // not-yet-quarantined epoch file (rollback candidates rot silently
  // otherwise — and a rotted candidate discovered during rollback is the
  // worst possible time). Returns the number of corruptions detected. Each
  // corrupt epoch gets a quarantine marker; the rollback callback fires
  // only for the CURRENT epoch — a rotted retained epoch endangers nothing
  // live, so it is struck from the candidate list and nothing else. A
  // missing CURRENT (fresh directory) is Ok(0).
  Result<uint64_t> ScrubOnce();

  JanitorStats stats() const;

  static std::string QuarantineMarkerPath(const std::string& dir,
                                          uint64_t epoch);
  static bool IsQuarantined(const std::string& dir, uint64_t epoch);
  // Sorted ascending epoch numbers parsed from pkg-*.ipk names in `dir`.
  static Result<std::vector<uint64_t>> ListEpochs(const std::string& dir);

 private:
  void Loop();
  // Scrubs one epoch file: on divergence writes its quarantine marker and,
  // for the current epoch only, invokes the rollback callback. Returns the
  // number of corruptions (0 or 1); non-kCorrupted scrub failures
  // (cancel, IO) pass through as errors.
  Result<uint64_t> ScrubEpoch(uint64_t epoch, bool is_current);

  JanitorOptions options_;
  RollbackFn on_corruption_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> cancel_scrub_{false};
  bool started_ = false;
  std::mutex lifecycle_mu_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  std::atomic<uint64_t> gc_passes_{0};
  std::atomic<uint64_t> epochs_deleted_{0};
  std::atomic<uint64_t> scrub_passes_{0};
  std::atomic<uint64_t> scrub_bytes_{0};
  std::atomic<uint64_t> scrub_corruptions_{0};
  std::atomic<uint64_t> epochs_quarantined_{0};
  std::atomic<uint64_t> rollbacks_requested_{0};
  std::atomic<uint64_t> rollbacks_failed_{0};
};

}  // namespace imageproof::storage

#endif  // IMAGEPROOF_STORAGE_EPOCH_JANITOR_H_
