// Disk-backed mmap package store with crash-safe epoch updates.
//
// The interchange serializer (storage/serializer.h) is a flat stream: load
// means parse everything, copy every image payload into anonymous memory,
// and rebuild every posting-chain digest — cost proportional to the corpus.
// The package store is the serving format: a page-aligned sectioned file
// that is mmap'd read-only (MAP_SHARED), opened by checking digests instead
// of recomputing them, and whose image payloads are never loaded at all —
// they fault in lazily from evictable page cache when a query's top-k
// result needs them, which keeps the resident set of a deployment below
// its corpus size.
//
// File layout (all integers canonical little-endian, common/bytes.h):
//
//   page 0        header  magic 'IPK1' | version | flags | page_size |
//                         section_count | toc_offset | toc_size |
//                         file_size | root_digest | toc_digest |
//                         header_digest
//   page 1..     TOC      per section: id(u32) | offset(u64) | size(u64) |
//                         digest(32) — offsets page-aligned, ranges
//                         non-overlapping and inside the file
//   then         sections each starting on a page boundary, zero-padded
//                         between; order fixed by section id
//
// Sections: kConfig, kCodebook, kCorpus, kWeights, kFilterGeo, kTrees,
// kPostings (per-list postings WITH their stored chain digests + the
// serialized cuckoo filters), kImageIndex (sorted id -> blob extent +
// per-payload digest + signature), kImageBlobs (raw payloads, lazily
// faulted).
//
// Integrity model (the PR-4 hardening discipline, extended to mmap):
//   * header_digest and toc_digest pin the metadata; every section except
//     kImageBlobs is digest-checked against the TOC on open. Any flipped
//     bit in checked bytes => kCorrupted at open.
//   * kImageBlobs would fault every page if hashed on open, defeating lazy
//     loading. Instead each payload's digest lives in the (checked)
//     kImageIndex and is verified on access: a tampered payload surfaces
//     as kCorrupted from the query that touches it, never as silently
//     wrong VO bytes.
//   * Authenticity is separate from integrity: Open re-derives h(Theta)
//     from the stored filter bytes, h_Gamma per list, and every MRKD node
//     digest, then (given PublicParams) RsaVerify's the root over the
//     mapped bytes — so a wholesale file swap by someone without the
//     owner's key fails open even with self-consistent digests. Stored
//     posting-chain digests are bound through h_pos1 and re-derived by
//     clients per query; deep_verify re-walks them eagerly.
//   * Every decoder caps allocations against bytes actually present,
//     decodes bools strictly, and reports all failures as kCorrupted.
//
// Crash-safe updates: a package file is only ever produced by
// AtomicWriteFile (temp + fsync + rename + dir fsync), and an epoch
// directory holds pkg-<epoch>.ipk files named by a CURRENT pointer file
// that is itself flipped atomically — the clone/verify/swap protocol of
// core/query_engine.h extended to disk. A crash at any step leaves CURRENT
// naming a complete, verifiable epoch (old or new), never a torn one.

#ifndef IMAGEPROOF_STORAGE_PACKAGE_STORE_H_
#define IMAGEPROOF_STORAGE_PACKAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/owner.h"
#include "core/vo.h"

namespace imageproof::storage {

struct WriteOptions {
  // Section alignment; power of two in [64, 1 << 20]. 4096 matches the
  // kernel page size for serving; tests shrink it so exhaustive bit-flip
  // scans stay fast.
  uint32_t page_size = 4096;
};

struct OpenOptions {
  // When set, the restored root digest is RsaVerify'd against
  // params->root_signature and the stored config must equal params->config.
  // Serving paths always set this; nullptr is for tooling that inspects
  // unsigned state.
  const core::PublicParams* params = nullptr;
  // Re-walk every posting/group chain and every image payload digest
  // eagerly (faults the whole file in). For audits and tests, not serving.
  bool deep_verify = false;
};

// Layout facts for tooling and the bit-flip scan: which byte ranges of the
// file are covered by open-time digests.
struct SectionExtent {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
};

struct PackageLayout {
  uint32_t page_size = 0;
  uint64_t file_size = 0;
  uint64_t header_bytes = 0;  // digest-pinned header prefix + trailing digests
  uint64_t toc_offset = 0;
  uint64_t toc_size = 0;
  std::vector<SectionExtent> sections;
};

// Knobs for the background scrub (see Scrub below). The scrubber shares
// the machine with serving traffic, so it is paced, chunked, and
// cancellable between chunks.
struct ScrubOptions {
  size_t chunk_bytes = 1 << 20;  // hash granularity between pacing sleeps
  size_t bytes_per_sec = 0;      // 0 = unthrottled
  const std::atomic<bool>* cancel = nullptr;  // checked between chunks
};

struct ScrubReport {
  uint64_t bytes_hashed = 0;
  uint64_t sections_checked = 0;
};

class PackageStore {
 public:
  // Serializes `package` into the sectioned format and durably replaces
  // `path` (write-new-file + fsync + atomic-rename). Works for in-memory
  // and disk-backed packages alike (payloads stream through the uniform
  // accessor, integrity-checked as they are read).
  static Status Write(const std::string& path, const core::SpPackage& package,
                      const WriteOptions& options = {});

  // Maps `path` and reconstructs a disk-backed SpPackage: sections are
  // digest-checked, indexes restored without rehashing their chains, MRKD
  // digests rebuilt, the root bound to the header and (with opts.params)
  // to the owner's signature. The returned package serves image payloads
  // zero-copy from the mapping; its `backing` member pins the map.
  static Result<std::unique_ptr<core::SpPackage>> Open(
      const std::string& path, const OpenOptions& opts = {});

  // Parses header + TOC only (still digest-checked). No sections are
  // decoded and nothing is verified against a signature.
  static Result<PackageLayout> Inspect(const std::string& path);

  // Re-walks the full digest chain of `path` against the bytes on disk:
  // header digest, TOC digest, then every section digest — *including*
  // kImageBlobs, which Open() deliberately skips (hashing it would fault
  // the whole file in; its TOC digest exists precisely so a scrubber can
  // check payload bytes that no query has touched lately). kCorrupted
  // names the first diverging region; kUnavailable means a cancel was
  // requested. Nothing is decoded and no signature is checked — this is
  // bit-rot detection, paired with the open-time authenticity chain.
  //
  // Fault site `storage.scrub.bitflip` corrupts one computed section
  // digest, simulating detected rot without touching the (shared,
  // possibly serving) file.
  static Status Scrub(const std::string& path, const ScrubOptions& options = {},
                      ScrubReport* report = nullptr);

  // --- epoch directory protocol ---------------------------------------

  static std::string EpochFileName(uint64_t epoch);

  // Writes dir/pkg-<epoch>.ipk crash-safely and returns its path. Does NOT
  // flip CURRENT: the caller is expected to Open() and verify the file
  // first (clone/verify/swap, on disk).
  static Result<std::string> WriteEpoch(const std::string& dir, uint64_t epoch,
                                        const core::SpPackage& package,
                                        const WriteOptions& options = {});

  // Atomically repoints dir/CURRENT at epoch. After this returns, a
  // reopening process serves the new epoch; before it, the old one.
  static Status SetCurrentEpoch(const std::string& dir, uint64_t epoch);

  // Reads dir/CURRENT. kError when absent (fresh directory).
  static Result<uint64_t> CurrentEpoch(const std::string& dir);

  // Opens the package CURRENT names. `epoch_out` (optional) receives the
  // epoch number.
  static Result<std::unique_ptr<core::SpPackage>> OpenCurrent(
      const std::string& dir, const OpenOptions& opts = {},
      uint64_t* epoch_out = nullptr);
};

}  // namespace imageproof::storage

#endif  // IMAGEPROOF_STORAGE_PACKAGE_STORE_H_
