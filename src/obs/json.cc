#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace imageproof::obs {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

void JsonWriter::Escape(std::string_view v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_elem_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_elem_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  BeforeValue();
  Escape(name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  Escape(v);
  return *this;
}

JsonWriter& JsonWriter::U64(uint64_t v) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::I64(int64_t v) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  char buf[40];
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace imageproof::obs
