#include "obs/metrics.h"

namespace imageproof::obs {

namespace {

// edges[b] = smallest integer in bucket b = ceil(2^(b/4)). Built once.
const std::array<uint64_t, Histogram::kBuckets>& Edges() {
  static const std::array<uint64_t, Histogram::kBuckets> edges = [] {
    std::array<uint64_t, Histogram::kBuckets> e{};
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      e[b] = static_cast<uint64_t>(
          std::ceil(std::pow(2.0, static_cast<double>(b) / 4.0)));
    }
    return e;
  }();
  return edges;
}

}  // namespace

uint64_t Histogram::BucketLowerEdgeInt(size_t b) {
  return Edges()[b < kBuckets ? b : kBuckets - 1];
}

size_t Histogram::BucketOf(uint64_t v) {
  if (v <= 1) return 0;
  // The octave is the top bit position; the quarter-octave is approximated
  // by the linear fraction below it. Because log2(1+x) >= x on [0,1], the
  // linear guess never overshoots and undershoots by < 0.35 of a bucket, so
  // one edge comparison fixes it up.
  int msb = 63 - __builtin_clzll(v);
  uint64_t frac = v - (uint64_t{1} << msb);
  size_t quarter = msb >= 2 ? static_cast<size_t>(frac >> (msb - 2))
                            : static_cast<size_t>(frac << (2 - msb));
  size_t b = static_cast<size_t>(msb) * 4 + quarter;
  if (b + 1 < kBuckets && v >= Edges()[b + 1]) ++b;
  return b < kBuckets ? b : kBuckets - 1;
}

#ifndef IMAGEPROOF_NO_METRICS

double Histogram::Percentile(double p) const {
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketUpperEdge(i);
  }
  return BucketUpperEdge(kBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  std::array<uint64_t, kBuckets> counts;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += counts[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  auto pct = [&](double p) {
    uint64_t rank = static_cast<uint64_t>(std::ceil(p * s.count));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) return BucketUpperEdge(i);
    }
    return BucketUpperEdge(kBuckets - 1);
  };
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  return s;
}

#else  // IMAGEPROOF_NO_METRICS

double Histogram::Percentile(double) const { return 0.0; }

HistogramSnapshot Histogram::Snapshot() const { return {}; }

#endif  // IMAGEPROOF_NO_METRICS

}  // namespace imageproof::obs
