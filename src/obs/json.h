// Minimal streaming JSON writer for metrics snapshots and bench reports.
//
// Deliberately tiny: objects, arrays, string/number/bool values, correct
// escaping, and deterministic number formatting (integers render with no
// fraction, other doubles with exactly three decimals). Determinism matters
// because snapshots are diffed across runs and pinned by golden tests —
// "%g"-style shortest-round-trip output would make that brittle.
//
// Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("count"); w.U64(3);
//   w.Key("name");  w.String("abc");
//   w.EndObject();
//   std::string s = w.Take();
//
// The writer does not validate call order beyond comma placement; callers
// are expected to emit well-formed sequences (this is internal tooling, not
// a general-purpose serializer).

#ifndef IMAGEPROOF_OBS_JSON_H_
#define IMAGEPROOF_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace imageproof::obs {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Emits the key and leaves the writer expecting its value.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view v);
  JsonWriter& U64(uint64_t v);
  JsonWriter& I64(int64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  // Splices pre-rendered JSON (e.g. a nested Registry dump) as one value.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();
  void Escape(std::string_view v);

  std::string out_;
  // One entry per open container: true once a first element was written.
  std::vector<bool> has_elem_;
  bool after_key_ = false;
};

}  // namespace imageproof::obs

#endif  // IMAGEPROOF_OBS_JSON_H_
