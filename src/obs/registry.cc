#include "obs/registry.h"

namespace imageproof::obs {

Registry& Registry::Global() {
  static Registry* g = new Registry();  // leaked: outlives static teardown
  return *g;
}

void AppendHistogramJson(JsonWriter& w, const Histogram& h) {
  HistogramSnapshot s = h.Snapshot();
  w.BeginObject();
  w.Key("count").U64(s.count);
  w.Key("sum").U64(s.sum);
  w.Key("min").U64(s.min);
  w.Key("max").U64(s.max);
  w.Key("p50").Double(s.p50);
  w.Key("p95").Double(s.p95);
  w.Key("p99").Double(s.p99);
  w.EndObject();
}

#ifndef IMAGEPROOF_NO_METRICS

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::AppendJson(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.Key(name).U64(c->Value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.Key(name).I64(g->Value());
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name);
    AppendHistogramJson(w, *h);
  }
  w.EndObject();
  w.EndObject();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

#else  // IMAGEPROOF_NO_METRICS

// No-op instances shared by every caller. The maps stay empty, so ToJson()
// reports an honest "nothing is being measured" rather than zero-filled
// entries that look like data.

Counter& Registry::GetCounter(const std::string&) {
  static Counter dummy;
  return dummy;
}

Gauge& Registry::GetGauge(const std::string&) {
  static Gauge dummy;
  return dummy;
}

Histogram& Registry::GetHistogram(const std::string&) {
  static Histogram dummy;
  return dummy;
}

void Registry::AppendJson(JsonWriter& w) const { w.BeginObject().EndObject(); }

void Registry::Reset() {}

#endif  // IMAGEPROOF_NO_METRICS

std::string Registry::ToJson() const {
  JsonWriter w;
  AppendJson(w);
  return w.Take();
}

}  // namespace imageproof::obs
