// Named metric registry with stable JSON snapshots.
//
// A Registry owns counters, gauges and histograms keyed by dotted names
// ("sp.stage.mrkd_search_us"). Lookup takes a mutex, so hot paths resolve
// their metrics ONCE into a function-local static and record through the
// returned reference ever after:
//
//   static obs::Histogram& h =
//       obs::Registry::Global().GetHistogram("sp.stage.mrkd_search_us");
//   obs::ScopedTimer t(h);
//
// References returned by Get* stay valid for the registry's lifetime
// (metrics are never deleted, only Reset()).
//
// ToJson() renders every metric sorted by name:
//
//   {"counters":{"name":N,...},
//    "gauges":{"name":N,...},
//    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
//                          "p50":..,"p95":..,"p99":..},...}}
//
// The key order is stable across runs (std::map) so two snapshots diff
// cleanly. Under IMAGEPROOF_NO_METRICS every Get* hands back a shared no-op
// instance, nothing is ever registered, and ToJson() returns "{}".

#ifndef IMAGEPROOF_OBS_REGISTRY_H_
#define IMAGEPROOF_OBS_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace imageproof::obs {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry the serving-path instrumentation records to.
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Stable, diff-friendly JSON of every registered metric.
  std::string ToJson() const;
  // Same content, spliced into an enclosing document as one object value.
  void AppendJson(JsonWriter& w) const;

  // Zeroes every metric (benches isolate phases with this). Registration
  // survives; references stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Appends one histogram's snapshot fields as a JSON object value; shared by
// Registry::AppendJson and QueryEngine::MetricsSnapshot.
void AppendHistogramJson(JsonWriter& w, const Histogram& h);

}  // namespace imageproof::obs

#endif  // IMAGEPROOF_OBS_REGISTRY_H_
