// Low-overhead metric primitives for the query-serving hot path.
//
// Everything here is wait-free on the record side: counters and gauges are
// single relaxed atomic RMWs on their own cache line (no false sharing with
// neighbouring metrics), and histograms are one relaxed RMW into a
// fixed-size log-scale bucket array plus sum/min/max upkeep. There are no
// locks, no allocation, and no syscalls on any Record/Add path, so the
// instrumentation can sit inside ServiceProvider::Query and Client::Verify
// without perturbing what it measures.
//
// Compile-out: building with -DIMAGEPROOF_NO_METRICS=ON (CMake option)
// defines IMAGEPROOF_NO_METRICS, which turns every primitive into an empty
// no-op class and every clock read into a constant. The instrumented call
// sites compile unchanged — the optimizer deletes them — and query output
// is byte-identical either way (metrics only ever observe; they never feed
// back into the response).
//
// Units are carried by metric *names* (suffix `_us` for microseconds,
// `_bytes` for sizes), not by the types: a Histogram is just a distribution
// of non-negative integers.

#ifndef IMAGEPROOF_OBS_METRICS_H_
#define IMAGEPROOF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace imageproof::obs {

#ifdef IMAGEPROOF_NO_METRICS
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

inline constexpr size_t kCacheLineBytes = 64;

// Point-in-time view of one histogram. Percentiles are upper-bound bucket
// estimates: the true quantile q satisfies q <= pXX <= q * 2^(1/4).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) {
#ifndef IMAGEPROOF_NO_METRICS
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
#ifndef IMAGEPROOF_NO_METRICS
    return v_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  void Reset() {
#ifndef IMAGEPROOF_NO_METRICS
    v_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
#ifndef IMAGEPROOF_NO_METRICS
  alignas(kCacheLineBytes) std::atomic<uint64_t> v_{0};
#endif
};

// Up/down level indicator (in-flight queries, queue depth mirrors, ...).
class Gauge {
 public:
  void Add(int64_t n = 1) {
#ifndef IMAGEPROOF_NO_METRICS
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  void Sub(int64_t n = 1) { Add(-n); }

  void Set(int64_t n) {
#ifndef IMAGEPROOF_NO_METRICS
    v_.store(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  int64_t Value() const {
#ifndef IMAGEPROOF_NO_METRICS
    return v_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  void Reset() { Set(0); }

 private:
#ifndef IMAGEPROOF_NO_METRICS
  alignas(kCacheLineBytes) std::atomic<int64_t> v_{0};
#endif
};

// Fixed-bucket log-scale histogram. Bucket b covers values in
// [2^(b/4), 2^((b+1)/4)); bucket 0 additionally absorbs 0. Four buckets per
// octave bounds the relative quantile error at 2^(1/4) ~ 19%, and 128
// buckets span [1, 2^32) — 71 minutes at microsecond resolution, 4 GiB at
// byte resolution — which covers every quantity the serving path emits.
class Histogram {
 public:
  static constexpr size_t kBuckets = 128;

  // Bucket index a value lands in. Bit-ops plus at most one table
  // comparison — no FPU work on the Record() path.
  static size_t BucketOf(uint64_t v);

  // Smallest integer value that lands in bucket b (ceil of the real edge
  // 2^(b/4)). Low buckets between consecutive integers are simply unused.
  static uint64_t BucketLowerEdgeInt(size_t b);

  // Exclusive upper edge of bucket b (the reported quantile estimate).
  static double BucketUpperEdge(size_t b) {
    return std::pow(2.0, static_cast<double>(b + 1) / 4.0);
  }

  void Record(uint64_t v) {
#ifndef IMAGEPROOF_NO_METRICS
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    AtomicMin(min_, v);
    AtomicMax(max_, v);
#else
    (void)v;
#endif
  }

  uint64_t Count() const {
#ifndef IMAGEPROOF_NO_METRICS
    uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
#else
    return 0;
#endif
  }

  uint64_t Sum() const {
#ifndef IMAGEPROOF_NO_METRICS
    return sum_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  // Upper-bound estimate of the p-quantile (p in [0, 1]). 0 when empty.
  double Percentile(double p) const;

  // Reads every bucket once and derives all stats from that one pass, so
  // count/percentiles within a snapshot are mutually consistent even while
  // writers race (the snapshot is some recent state, not a torn mix).
  HistogramSnapshot Snapshot() const;

  void Reset() {
#ifndef IMAGEPROOF_NO_METRICS
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
#ifndef IMAGEPROOF_NO_METRICS
  static void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  alignas(kCacheLineBytes) std::array<std::atomic<uint64_t>, kBuckets>
      buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
#endif
};

// ---------------------------------------------------------------------------
// Timing. Now()/ElapsedUs() compile to constants under IMAGEPROOF_NO_METRICS
// so call sites never pay for a clock read they don't use.
// ---------------------------------------------------------------------------

using MetricClock = std::chrono::steady_clock;
using TimePoint = MetricClock::time_point;

inline TimePoint Now() {
  if constexpr (kMetricsEnabled) {
    return MetricClock::now();
  } else {
    return TimePoint{};
  }
}

inline uint64_t ElapsedUs(TimePoint start) {
  if constexpr (kMetricsEnabled) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            MetricClock::now() - start)
            .count());
  } else {
    (void)start;
    return 0;
  }
}

// RAII stage timer: records elapsed microseconds into a histogram when it
// goes out of scope (or at an explicit Stop()). Early returns thus still
// attribute their partial stage time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(&h), start_(Now()) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->Record(ElapsedUs(start_));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Records now and detaches; returns the elapsed microseconds.
  uint64_t Stop() {
    uint64_t us = ElapsedUs(start_);
    if (h_ != nullptr) h_->Record(us);
    h_ = nullptr;
    return us;
  }

 private:
  Histogram* h_;
  TimePoint start_;
};

}  // namespace imageproof::obs

#endif  // IMAGEPROOF_OBS_METRICS_H_
