// Forest of randomized k-d trees with FLANN-style best-bin-first search —
// the AKM (approximate k-means) nearest-cluster routine of the paper.
//
// All trees are traversed with one shared priority queue keyed by the
// (approximate) minimum distance from the query to each pending subtree; the
// search stops after `max_leaf_checks` leaves have been examined and returns
// the best cluster found so far, exactly as in Philbin et al. (CVPR'07) and
// Muja & Lowe (VISSAPP'09).
//
// Thread safety: ApproxNearest is const and allocates its priority queue on
// the stack, so concurrent searches over one forest are safe. ReplaceTrees
// mutates and requires external exclusion (it only runs on freshly
// deserialized, not-yet-shared packages).

#ifndef IMAGEPROOF_ANN_RKD_FOREST_H_
#define IMAGEPROOF_ANN_RKD_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ann/rkd_tree.h"

namespace imageproof::ann {

struct ForestParams {
  int num_trees = 8;        // n_t in the paper
  int max_leaf_size = 2;    // clusters per leaf
  int max_leaf_checks = 32; // AKM stops after exploring this many leaves
  uint64_t seed = 0x5EED;

  bool operator==(const ForestParams&) const = default;
};

struct NearestResult {
  int32_t index = -1;    // point (cluster) index, -1 if the set is empty
  double dist_sq = 0.0;  // squared distance to it
};

class RkdForest {
 public:
  // Builds `params.num_trees` randomized trees over `points` (borrowed).
  RkdForest(const PointSet& points, ForestParams params);

  // Approximate nearest neighbor of `query` (AKM step).
  NearestResult ApproxNearest(const float* query) const;

  const std::vector<std::unique_ptr<RkdTree>>& trees() const { return trees_; }

  // Swaps in persisted tree structures (storage/serializer.h); the trees
  // must index this forest's point set.
  void ReplaceTrees(std::vector<std::unique_ptr<RkdTree>> trees) {
    trees_ = std::move(trees);
  }
  const PointSet& points() const { return *points_; }
  const ForestParams& params() const { return params_; }

 private:
  const PointSet* points_;
  ForestParams params_;
  std::vector<std::unique_ptr<RkdTree>> trees_;
};

}  // namespace imageproof::ann

#endif  // IMAGEPROOF_ANN_RKD_FOREST_H_
