// Forest of randomized k-d trees with FLANN-style best-bin-first search —
// the AKM (approximate k-means) nearest-cluster routine of the paper.
//
// All trees are traversed with one shared priority queue keyed by the
// (approximate) minimum distance from the query to each pending subtree; the
// search stops after `max_leaf_checks` leaves have been examined and returns
// the best cluster found so far, exactly as in Philbin et al. (CVPR'07) and
// Muja & Lowe (VISSAPP'09).
//
// Thread safety: ApproxNearest is const; without a scratch it allocates its
// priority queue locally, so concurrent searches over one forest are safe.
// A kern::SearchScratch passed in is the *caller's* single-owner state — one
// scratch per concurrent searcher. ReplaceTrees mutates and requires
// external exclusion (it only runs on freshly deserialized, not-yet-shared
// packages).

#ifndef IMAGEPROOF_ANN_RKD_FOREST_H_
#define IMAGEPROOF_ANN_RKD_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ann/rkd_tree.h"
#include "common/kernels.h"

namespace imageproof::ann {

struct ForestParams {
  int num_trees = 8;        // n_t in the paper
  int max_leaf_size = 2;    // clusters per leaf
  int max_leaf_checks = 32; // AKM stops after exploring this many leaves
  uint64_t seed = 0x5EED;

  bool operator==(const ForestParams&) const = default;
};

struct NearestResult {
  int32_t index = -1;    // point (cluster) index, -1 if the set is empty
  double dist_sq = 0.0;  // squared distance to it
};

class RkdForest {
 public:
  // Builds `params.num_trees` randomized trees over `points` (borrowed).
  RkdForest(const PointSet& points, ForestParams params);

  // Approximate nearest neighbor of `query` (AKM step). With a scratch the
  // best-bin-first queue lives in (and warms) the caller's buffers, so a
  // steady-state search allocates nothing; without one a local queue is
  // used. Results are identical either way. Leaf scans use the pruned
  // squared-L2 kernel against the best-so-far bound, with strictly-smaller
  // updates — among exactly tied candidates the first one reached in
  // traversal order wins (deterministic: traversal order is fixed).
  NearestResult ApproxNearest(const float* query,
                              kern::SearchScratch* scratch = nullptr) const;

  const std::vector<std::unique_ptr<RkdTree>>& trees() const { return trees_; }

  // Swaps in persisted tree structures (storage/serializer.h); the trees
  // must index this forest's point set.
  void ReplaceTrees(std::vector<std::unique_ptr<RkdTree>> trees) {
    trees_ = std::move(trees);
  }
  const PointSet& points() const { return *points_; }
  const ForestParams& params() const { return params_; }

 private:
  const PointSet* points_;
  ForestParams params_;
  std::vector<std::unique_ptr<RkdTree>> trees_;
};

}  // namespace imageproof::ann

#endif  // IMAGEPROOF_ANN_RKD_FOREST_H_
