#include "ann/rkd_forest.h"

#include <limits>
#include <queue>

namespace imageproof::ann {

RkdForest::RkdForest(const PointSet& points, ForestParams params)
    : points_(&points), params_(params) {
  trees_.reserve(params_.num_trees);
  for (int t = 0; t < params_.num_trees; ++t) {
    trees_.push_back(std::make_unique<RkdTree>(
        points, params_.max_leaf_size, params_.seed + 0x9E3779B9ULL * (t + 1)));
  }
}

namespace {

struct Branch {
  double min_dist;
  int tree;
  int node;
  bool operator>(const Branch& o) const { return min_dist > o.min_dist; }
};

}  // namespace

NearestResult RkdForest::ApproxNearest(const float* query) const {
  NearestResult best;
  best.dist_sq = std::numeric_limits<double>::infinity();
  if (points_->empty()) return best;

  std::priority_queue<Branch, std::vector<Branch>, std::greater<Branch>> queue;
  for (int t = 0; t < static_cast<int>(trees_.size()); ++t) {
    queue.push(Branch{0.0, t, trees_[t]->root()});
  }

  const size_t dims = points_->dims();
  int leaves_checked = 0;
  while (!queue.empty() && leaves_checked < params_.max_leaf_checks) {
    Branch branch = queue.top();
    queue.pop();
    if (branch.min_dist >= best.dist_sq) continue;

    const RkdTree& tree = *trees_[branch.tree];
    int node_index = branch.node;
    double min_dist = branch.min_dist;
    // Descend to a leaf, queueing the far sibling at every level with the
    // FLANN cumulative distance approximation.
    while (true) {
      const RkdNode& node = tree.nodes()[node_index];
      if (node.IsLeaf()) {
        for (int32_t i = node.begin; i < node.end; ++i) {
          int32_t pi = tree.point_indices()[i];
          double d = SquaredL2(query, points_->row(pi), dims);
          if (d < best.dist_sq ||
              (d == best.dist_sq && pi < best.index)) {
            best.dist_sq = d;
            best.index = pi;
          }
        }
        ++leaves_checked;
        break;
      }
      double diff = static_cast<double>(query[node.split_dim]) - node.split_value;
      int near_child = diff < 0 ? node.left : node.right;
      int far_child = diff < 0 ? node.right : node.left;
      queue.push(Branch{min_dist + diff * diff, branch.tree, far_child});
      node_index = near_child;
    }
  }
  return best;
}

}  // namespace imageproof::ann
