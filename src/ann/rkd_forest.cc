#include "ann/rkd_forest.h"

#include <algorithm>
#include <limits>

namespace imageproof::ann {

RkdForest::RkdForest(const PointSet& points, ForestParams params)
    : points_(&points), params_(params) {
  trees_.reserve(params_.num_trees);
  for (int t = 0; t < params_.num_trees; ++t) {
    trees_.push_back(std::make_unique<RkdTree>(
        points, params_.max_leaf_size, params_.seed + 0x9E3779B9ULL * (t + 1)));
  }
}

NearestResult RkdForest::ApproxNearest(const float* query,
                                       kern::SearchScratch* scratch) const {
  NearestResult best;
  best.dist_sq = std::numeric_limits<double>::infinity();
  if (points_->empty()) return best;

  // Min-heap on min_dist over the caller's reusable buffer (or a local one):
  // push_heap/pop_heap with BranchGreater pop the closest pending subtree
  // first, exactly like the std::priority_queue this replaces.
  std::vector<kern::BestBinBranch> local_heap;
  std::vector<kern::BestBinBranch>& heap =
      scratch ? scratch->branch_heap : local_heap;
  heap.clear();
  auto heap_push = [&heap](kern::BestBinBranch b) {
    heap.push_back(b);
    std::push_heap(heap.begin(), heap.end(), kern::BranchGreater);
  };
  for (int t = 0; t < static_cast<int>(trees_.size()); ++t) {
    heap_push(kern::BestBinBranch{0.0, t, trees_[t]->root()});
  }

  const size_t dims = points_->dims();
  int leaves_checked = 0;
  while (!heap.empty() && leaves_checked < params_.max_leaf_checks) {
    std::pop_heap(heap.begin(), heap.end(), kern::BranchGreater);
    kern::BestBinBranch branch = heap.back();
    heap.pop_back();
    if (branch.min_dist >= best.dist_sq) continue;

    const RkdTree& tree = *trees_[branch.tree];
    int node_index = branch.node;
    double min_dist = branch.min_dist;
    // Descend to a leaf, queueing the far sibling at every level with the
    // FLANN cumulative distance approximation.
    while (true) {
      const RkdNode& node = tree.nodes()[node_index];
      if (node.IsLeaf()) {
        for (int32_t i = node.begin; i < node.end; ++i) {
          int32_t pi = tree.point_indices()[i];
          // The pruned kernel may return any partial sum >= the bound for a
          // point that cannot win, so only a strictly smaller value — which
          // is always an exactly computed distance — may update the best.
          double d = kern::SquaredL2Pruned(query, points_->row(pi), dims,
                                           best.dist_sq);
          if (d < best.dist_sq) {
            best.dist_sq = d;
            best.index = pi;
          }
        }
        ++leaves_checked;
        break;
      }
      double diff = static_cast<double>(query[node.split_dim]) - node.split_value;
      int near_child = diff < 0 ? node.left : node.right;
      int far_child = diff < 0 ? node.right : node.left;
      heap_push(
          kern::BestBinBranch{min_dist + diff * diff, branch.tree, far_child});
      node_index = near_child;
    }
  }
  return best;
}

}  // namespace imageproof::ann
