// Approximate k-means (AKM) codebook training, following Philbin et al.
// (CVPR'07): each Lloyd iteration assigns points to their *approximate*
// nearest center using a freshly built randomized k-d forest, which is what
// makes million-word vocabularies tractable.

#ifndef IMAGEPROOF_ANN_KMEANS_H_
#define IMAGEPROOF_ANN_KMEANS_H_

#include <cstdint>
#include <vector>

#include "ann/points.h"
#include "ann/rkd_forest.h"

namespace imageproof::ann {

struct AkmParams {
  int num_clusters = 0;   // required
  int iterations = 8;
  ForestParams forest;    // forest used for approximate assignment
  uint64_t seed = 0xC0DE;
};

struct AkmResult {
  PointSet centers;
  std::vector<int32_t> assignment;  // final cluster of each input point
  double quantization_error = 0.0;  // mean squared distance to the center
};

// Trains a codebook over `points`. Requires
// params.num_clusters <= points.size().
AkmResult TrainCodebook(const PointSet& points, const AkmParams& params);

}  // namespace imageproof::ann

#endif  // IMAGEPROOF_ANN_KMEANS_H_
