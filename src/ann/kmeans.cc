#include "ann/kmeans.h"

#include <algorithm>

#include "common/random.h"

namespace imageproof::ann {

AkmResult TrainCodebook(const PointSet& points, const AkmParams& params) {
  AkmResult result;
  const size_t n = points.size();
  const size_t dims = points.dims();
  const size_t k = static_cast<size_t>(params.num_clusters);
  result.assignment.assign(n, 0);
  if (n == 0 || k == 0) return result;

  // k-means++ seeding: each next center is sampled with probability
  // proportional to its squared distance from the nearest chosen center,
  // which avoids the local minima plain random seeding falls into.
  Rng rng(params.seed);
  result.centers = PointSet(dims, 0);
  result.centers.set_dims(dims);
  result.centers.AppendRow(points.row(rng.NextBounded(n)));
  std::vector<double> nearest_sq(n);
  for (size_t i = 0; i < n; ++i) {
    nearest_sq[i] = SquaredL2(points.row(i), result.centers.row(0), dims);
  }
  while (result.centers.size() < k) {
    double total = 0;
    for (double d : nearest_sq) total += d;
    size_t chosen;
    if (total <= 0) {
      chosen = rng.NextBounded(n);
    } else {
      double target = rng.NextDouble() * total;
      chosen = n - 1;
      double acc = 0;
      for (size_t i = 0; i < n; ++i) {
        acc += nearest_sq[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    }
    result.centers.AppendRow(points.row(chosen));
    const float* c = result.centers.row(result.centers.size() - 1);
    for (size_t i = 0; i < n; ++i) {
      nearest_sq[i] = std::min(nearest_sq[i], SquaredL2(points.row(i), c, dims));
    }
  }

  std::vector<double> sums(k * dims);
  std::vector<int64_t> counts(k);

  for (int iter = 0; iter < params.iterations; ++iter) {
    ForestParams fp = params.forest;
    fp.seed = params.seed + 0x1234567ULL * (iter + 1);
    RkdForest forest(result.centers, fp);

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    double total_err = 0;
    for (size_t i = 0; i < n; ++i) {
      NearestResult nearest = forest.ApproxNearest(points.row(i));
      int32_t c = nearest.index;
      result.assignment[i] = c;
      total_err += nearest.dist_sq;
      counts[c]++;
      const float* p = points.row(i);
      double* s = sums.data() + static_cast<size_t>(c) * dims;
      for (size_t d = 0; d < dims; ++d) s[d] += p[d];
    }
    result.quantization_error = total_err / static_cast<double>(n);

    // Recompute means; empty clusters are reseeded to random points.
    for (size_t c = 0; c < k; ++c) {
      float* center = result.centers.row(c);
      if (counts[c] == 0) {
        const float* p = points.row(rng.NextBounded(n));
        std::copy(p, p + dims, center);
        continue;
      }
      double inv = 1.0 / static_cast<double>(counts[c]);
      const double* s = sums.data() + c * dims;
      for (size_t d = 0; d < dims; ++d) {
        center[d] = static_cast<float>(s[d] * inv);
      }
    }
  }
  return result;
}

}  // namespace imageproof::ann
