#include "ann/kmeans.h"

#include <algorithm>

#include "common/kernels.h"
#include "common/random.h"

namespace imageproof::ann {

AkmResult TrainCodebook(const PointSet& points, const AkmParams& params) {
  AkmResult result;
  const size_t n = points.size();
  const size_t dims = points.dims();
  const size_t k = static_cast<size_t>(params.num_clusters);
  result.assignment.assign(n, 0);
  if (n == 0 || k == 0) return result;

  // k-means++ seeding: each next center is sampled with probability
  // proportional to its squared distance from the nearest chosen center,
  // which avoids the local minima plain random seeding falls into.
  Rng rng(params.seed);
  result.centers = PointSet(dims, 0);
  result.centers.set_dims(dims);
  result.centers.AppendRow(points.row(rng.NextBounded(n)));
  // Batched distances: all points are contiguous rows, so one kernel call
  // covers the whole sweep. SquaredL2 is symmetric bitwise (the per-dim
  // differences are exact negations), so center-vs-points equals the
  // written point-vs-center order.
  std::vector<double> nearest_sq(n);
  kern::SquaredL2Batch(result.centers.row(0), points.row(0), dims, n, dims,
                       nearest_sq.data());
  std::vector<double> center_dist(n);
  while (result.centers.size() < k) {
    double total = 0;
    for (double d : nearest_sq) total += d;
    size_t chosen;
    if (total <= 0) {
      chosen = rng.NextBounded(n);
    } else {
      double target = rng.NextDouble() * total;
      chosen = n - 1;
      double acc = 0;
      for (size_t i = 0; i < n; ++i) {
        acc += nearest_sq[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    }
    result.centers.AppendRow(points.row(chosen));
    const float* c = result.centers.row(result.centers.size() - 1);
    kern::SquaredL2Batch(c, points.row(0), dims, n, dims, center_dist.data());
    for (size_t i = 0; i < n; ++i) {
      nearest_sq[i] = std::min(nearest_sq[i], center_dist[i]);
    }
  }

  std::vector<double> sums(k * dims);
  std::vector<int64_t> counts(k);
  kern::SearchScratch scratch;  // warm across assignment sweeps

  for (int iter = 0; iter < params.iterations; ++iter) {
    ForestParams fp = params.forest;
    fp.seed = params.seed + 0x1234567ULL * (iter + 1);
    RkdForest forest(result.centers, fp);

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    double total_err = 0;
    for (size_t i = 0; i < n; ++i) {
      NearestResult nearest = forest.ApproxNearest(points.row(i), &scratch);
      int32_t c = nearest.index;
      result.assignment[i] = c;
      total_err += nearest.dist_sq;
      counts[c]++;
      const float* p = points.row(i);
      double* s = sums.data() + static_cast<size_t>(c) * dims;
      for (size_t d = 0; d < dims; ++d) s[d] += p[d];
    }
    result.quantization_error = total_err / static_cast<double>(n);

    // Recompute means; empty clusters are reseeded to random points.
    for (size_t c = 0; c < k; ++c) {
      float* center = result.centers.row(c);
      if (counts[c] == 0) {
        const float* p = points.row(rng.NextBounded(n));
        std::copy(p, p + dims, center);
        continue;
      }
      double inv = 1.0 / static_cast<double>(counts[c]);
      const double* s = sums.data() + c * dims;
      for (size_t d = 0; d < dims; ++d) {
        center[d] = static_cast<float>(s[d] * inv);
      }
    }
  }
  return result;
}

}  // namespace imageproof::ann
