// Flat row-major point storage shared by the ANN structures, the AKM
// trainer, and the MRKD-tree. Keeping points in one contiguous buffer makes
// tree construction and distance evaluation cache-friendly.

#ifndef IMAGEPROOF_ANN_POINTS_H_
#define IMAGEPROOF_ANN_POINTS_H_

#include <cstddef>
#include <vector>

namespace imageproof::ann {

class PointSet {
 public:
  PointSet() = default;
  PointSet(size_t dims, size_t count) : dims_(dims), data_(dims * count) {}

  static PointSet FromRows(const std::vector<std::vector<float>>& rows) {
    PointSet out;
    if (rows.empty()) return out;
    out.dims_ = rows[0].size();
    out.data_.reserve(rows.size() * out.dims_);
    for (const auto& r : rows) {
      out.data_.insert(out.data_.end(), r.begin(), r.end());
    }
    return out;
  }

  size_t dims() const { return dims_; }
  size_t size() const { return dims_ == 0 ? 0 : data_.size() / dims_; }
  bool empty() const { return data_.empty(); }

  const float* row(size_t i) const { return data_.data() + i * dims_; }
  float* row(size_t i) { return data_.data() + i * dims_; }

  std::vector<float> RowVec(size_t i) const {
    return std::vector<float>(row(i), row(i) + dims_);
  }

  void AppendRow(const float* p) { data_.insert(data_.end(), p, p + dims_); }
  void AppendRow(const std::vector<float>& p) { AppendRow(p.data()); }

  void set_dims(size_t dims) { dims_ = dims; }

 private:
  size_t dims_ = 0;
  std::vector<float> data_;
};

// Squared Euclidean distance between two d-dimensional points.
inline double SquaredL2(const float* a, const float* b, size_t d) {
  double acc = 0;
  for (size_t i = 0; i < d; ++i) {
    double diff = static_cast<double>(a[i]) - b[i];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace imageproof::ann

#endif  // IMAGEPROOF_ANN_POINTS_H_
