// Flat row-major point storage shared by the ANN structures, the AKM
// trainer, and the MRKD-tree. Keeping points in one contiguous buffer makes
// tree construction and distance evaluation cache-friendly; the buffer is
// 32-byte aligned so the AVX2 distance kernels start every scan from an
// aligned base (rows themselves are dims-strided — 128-d SIFT rows stay
// aligned, odd dims fall back to unaligned loads inside the kernel).

#ifndef IMAGEPROOF_ANN_POINTS_H_
#define IMAGEPROOF_ANN_POINTS_H_

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/kernels.h"
#include "common/status.h"

namespace imageproof::ann {

class PointSet {
 public:
  PointSet() = default;
  PointSet(size_t dims, size_t count) : dims_(dims), data_(dims * count) {}

  // Builds from per-point rows. Every row must have the same dimension as
  // the first; a ragged input would silently corrupt row-major indexing,
  // so it aborts (all in-tree callers construct rows programmatically —
  // untrusted input goes through TryFromRows).
  static PointSet FromRows(const std::vector<std::vector<float>>& rows) {
    Result<PointSet> out = TryFromRows(rows);
    if (!out.ok()) {
      std::fprintf(stderr, "PointSet::FromRows: %s\n",
                   out.status().message().c_str());
      std::abort();
    }
    return std::move(out).value();
  }

  // Validating variant for untrusted input: rejects ragged rows instead of
  // aborting.
  static Result<PointSet> TryFromRows(
      const std::vector<std::vector<float>>& rows) {
    PointSet out;
    if (rows.empty()) return out;
    out.dims_ = rows[0].size();
    out.data_.reserve(rows.size() * out.dims_);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].size() != out.dims_) {
        return Status::Error("ragged point rows: row " + std::to_string(i) +
                             " has " + std::to_string(rows[i].size()) +
                             " dims, expected " + std::to_string(out.dims_));
      }
      out.data_.insert(out.data_.end(), rows[i].begin(), rows[i].end());
    }
    return out;
  }

  size_t dims() const { return dims_; }
  size_t size() const { return dims_ == 0 ? 0 : data_.size() / dims_; }
  bool empty() const { return data_.empty(); }

  const float* row(size_t i) const { return data_.data() + i * dims_; }
  float* row(size_t i) { return data_.data() + i * dims_; }

  std::vector<float> RowVec(size_t i) const {
    return std::vector<float>(row(i), row(i) + dims_);
  }

  void AppendRow(const float* p) { data_.insert(data_.end(), p, p + dims_); }
  void AppendRow(const std::vector<float>& p) { AppendRow(p.data()); }

  void set_dims(size_t dims) { dims_ = dims; }

 private:
  size_t dims_ = 0;
  kern::AlignedVector<float> data_;
};

// Squared Euclidean distance between two d-dimensional points, in the
// canonical reduction order of common/kernels.h (AVX2 when available). All
// retrieval distance comparisons — server side and client verification
// alike — route through this one function, so both sides always agree
// bitwise.
inline double SquaredL2(const float* a, const float* b, size_t d) {
  return kern::SquaredL2(a, b, d);
}

}  // namespace imageproof::ann

#endif  // IMAGEPROOF_ANN_POINTS_H_
