#include "ann/rkd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace imageproof::ann {

RkdTree::RkdTree(const PointSet& points, int max_leaf_size, uint64_t seed)
    : points_(&points), max_leaf_size_(max_leaf_size < 1 ? 1 : max_leaf_size) {
  point_indices_.resize(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    point_indices_[i] = static_cast<int32_t>(i);
  }
  if (!points.empty()) {
    Rng rng(seed);
    BuildNode(0, static_cast<int32_t>(points.size()), rng);
  }
}

int RkdTree::BuildNode(int32_t begin, int32_t end, Rng& rng) {
  int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  if (end - begin <= max_leaf_size_) {
    RkdNode& node = nodes_[node_index];
    node.begin = begin;
    node.end = end;
    return node_index;
  }

  const size_t dims = points_->dims();
  // Mean and variance per dimension over [begin, end).
  std::vector<double> mean(dims, 0.0), var(dims, 0.0);
  for (int32_t i = begin; i < end; ++i) {
    const float* p = points_->row(point_indices_[i]);
    for (size_t d = 0; d < dims; ++d) mean[d] += p[d];
  }
  double inv_n = 1.0 / (end - begin);
  for (size_t d = 0; d < dims; ++d) mean[d] *= inv_n;
  for (int32_t i = begin; i < end; ++i) {
    const float* p = points_->row(point_indices_[i]);
    for (size_t d = 0; d < dims; ++d) {
      double diff = p[d] - mean[d];
      var[d] += diff * diff;
    }
  }

  // Randomly pick the split dimension among the top-variance dimensions.
  int top_n = static_cast<int>(std::min<size_t>(kTopVarianceDims, dims));
  std::vector<int> dim_order(dims);
  for (size_t d = 0; d < dims; ++d) dim_order[d] = static_cast<int>(d);
  std::partial_sort(dim_order.begin(), dim_order.begin() + top_n, dim_order.end(),
                    [&var](int a, int b) { return var[a] > var[b]; });
  int split_dim = dim_order[rng.NextBounded(top_n)];
  float split_value = static_cast<float>(mean[split_dim]);

  // Partition: strictly-less goes left. Guard against degenerate splits
  // (all values on one side) by falling back to a median split.
  int32_t* idx = point_indices_.data();
  auto is_left = [&](int32_t pi) {
    return points_->row(pi)[split_dim] < split_value;
  };
  int32_t* mid_ptr = std::partition(idx + begin, idx + end,
                                    [&](int32_t pi) { return is_left(pi); });
  int32_t mid = static_cast<int32_t>(mid_ptr - idx);
  if (mid == begin || mid == end) {
    int32_t half = begin + (end - begin) / 2;
    std::nth_element(idx + begin, idx + half, idx + end,
                     [&](int32_t a, int32_t b) {
                       return points_->row(a)[split_dim] <
                              points_->row(b)[split_dim];
                     });
    mid = half;
    split_value = points_->row(idx[half])[split_dim];
  }

  int left = BuildNode(begin, mid, rng);
  int right = BuildNode(mid, end, rng);
  RkdNode& node = nodes_[node_index];
  node.split_dim = split_dim;
  node.split_value = split_value;
  node.left = left;
  node.right = right;
  node.begin = begin;
  node.end = end;
  return node_index;
}

namespace {

// DFS with exact incremental min-distance maintenance. `offsets[d]` holds
// the current per-dimension distance from the query to the node's region.
void RangeSearchRec(const RkdTree& tree, int node_index, const float* query,
                    double radius_sq, double min_dist_sq,
                    std::vector<double>& offsets, std::vector<int32_t>* out) {
  const RkdNode& node = tree.nodes()[node_index];
  if (node.IsLeaf()) {
    for (int32_t i = node.begin; i < node.end; ++i) {
      out->push_back(tree.point_indices()[i]);
    }
    return;
  }
  int d = node.split_dim;
  double diff = static_cast<double>(query[d]) - node.split_value;
  int near_child = diff < 0 ? node.left : node.right;
  int far_child = diff < 0 ? node.right : node.left;

  RangeSearchRec(tree, near_child, query, radius_sq, min_dist_sq, offsets, out);

  double old_offset = offsets[d];
  double new_offset_sq = diff * diff;
  double old_offset_sq = old_offset * old_offset;
  // Entering the far child, the region's constraint along d tightens to
  // |diff| (it can only grow relative to the inherited offset).
  if (new_offset_sq > old_offset_sq) {
    double far_dist = min_dist_sq - old_offset_sq + new_offset_sq;
    if (far_dist <= radius_sq) {
      offsets[d] = std::abs(diff);
      RangeSearchRec(tree, far_child, query, radius_sq, far_dist, offsets, out);
      offsets[d] = old_offset;
    }
  } else {
    RangeSearchRec(tree, far_child, query, radius_sq, min_dist_sq, offsets, out);
  }
}

void ExactNearestRec(const RkdTree& tree, int node_index, const float* query,
                     double min_dist_sq, std::vector<double>& offsets,
                     double* best_dist, int32_t* best_index) {
  if (min_dist_sq >= *best_dist) return;
  const RkdNode& node = tree.nodes()[node_index];
  if (node.IsLeaf()) {
    for (int32_t i = node.begin; i < node.end; ++i) {
      int32_t pi = tree.point_indices()[i];
      double d = SquaredL2(query, tree.points().row(pi), tree.points().dims());
      if (d < *best_dist || (d == *best_dist && pi < *best_index)) {
        *best_dist = d;
        *best_index = pi;
      }
    }
    return;
  }
  int d = node.split_dim;
  double diff = static_cast<double>(query[d]) - node.split_value;
  int near_child = diff < 0 ? node.left : node.right;
  int far_child = diff < 0 ? node.right : node.left;
  ExactNearestRec(tree, near_child, query, min_dist_sq, offsets, best_dist,
                  best_index);
  double old_offset = offsets[d];
  double new_offset_sq = diff * diff;
  double old_offset_sq = old_offset * old_offset;
  double far_dist = new_offset_sq > old_offset_sq
                        ? min_dist_sq - old_offset_sq + new_offset_sq
                        : min_dist_sq;
  if (far_dist < *best_dist) {
    if (new_offset_sq > old_offset_sq) offsets[d] = std::abs(diff);
    ExactNearestRec(tree, far_child, query, far_dist, offsets, best_dist,
                    best_index);
    offsets[d] = old_offset;
  }
}

}  // namespace

std::vector<int32_t> RkdTree::RangeSearch(const float* query,
                                          double radius_sq) const {
  std::vector<int32_t> out;
  if (nodes_.empty()) return out;
  std::vector<double> offsets(points_->dims(), 0.0);
  RangeSearchRec(*this, root(), query, radius_sq, 0.0, offsets, &out);
  return out;
}

int32_t RkdTree::ExactNearest(const float* query, double* dist_sq_out) const {
  double best = std::numeric_limits<double>::infinity();
  int32_t best_index = -1;
  if (!nodes_.empty()) {
    std::vector<double> offsets(points_->dims(), 0.0);
    ExactNearestRec(*this, root(), query, 0.0, offsets, &best, &best_index);
  }
  if (dist_sq_out) *dist_sq_out = best;
  return best_index;
}

}  // namespace imageproof::ann
