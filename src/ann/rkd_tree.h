// Randomized k-d tree (the building block of AKM's approximate
// nearest-neighbor search and of the Merkle randomized k-d tree ADS).
//
// At each internal node the split dimension is drawn uniformly from the
// `kTopVarianceDims` dimensions with the largest variance over the node's
// points, and the split value is the mean along that dimension — the
// construction used by FLANN and by the ImageProof paper. The tree structure
// is fully exposed (node array + permuted point index array) because the
// MRKD-tree decorates it with digests and the client re-walks it during
// verification.

#ifndef IMAGEPROOF_ANN_RKD_TREE_H_
#define IMAGEPROOF_ANN_RKD_TREE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "ann/points.h"

namespace imageproof::ann {

struct RkdNode {
  // Internal node fields; a node is a leaf iff left < 0.
  int32_t split_dim = -1;
  float split_value = 0;
  int32_t left = -1;
  int32_t right = -1;
  // Leaf fields: the node's points are point_indices[begin, end).
  int32_t begin = 0;
  int32_t end = 0;

  bool IsLeaf() const { return left < 0; }
};

class RkdTree {
 public:
  // Builds over all points of `points` (which must outlive the tree).
  // `max_leaf_size` caps the number of points per leaf (the paper uses 2).
  RkdTree(const PointSet& points, int max_leaf_size, uint64_t seed);

  // Reconstructs a tree from persisted parts (storage/serializer.h). The
  // caller is responsible for structural validity.
  RkdTree(const PointSet& points, int max_leaf_size,
          std::vector<RkdNode> nodes, std::vector<int32_t> point_indices)
      : points_(&points),
        max_leaf_size_(max_leaf_size),
        nodes_(std::move(nodes)),
        point_indices_(std::move(point_indices)) {}

  const PointSet& points() const { return *points_; }
  const std::vector<RkdNode>& nodes() const { return nodes_; }
  const std::vector<int32_t>& point_indices() const { return point_indices_; }
  int root() const { return 0; }
  int max_leaf_size() const { return max_leaf_size_; }

  // Exact range search: indices of all points within squared distance
  // `radius_sq` of `query` (used by tests as the reference for MRKDSearch).
  std::vector<int32_t> RangeSearch(const float* query, double radius_sq) const;

  // Exact nearest neighbor via branch-and-bound (reference for tests).
  int32_t ExactNearest(const float* query, double* dist_sq_out) const;

 private:
  int BuildNode(int32_t begin, int32_t end, Rng& rng);

  static constexpr int kTopVarianceDims = 5;

  const PointSet* points_;
  int max_leaf_size_;
  std::vector<RkdNode> nodes_;
  std::vector<int32_t> point_indices_;
};

}  // namespace imageproof::ann

#endif  // IMAGEPROOF_ANN_RKD_TREE_H_
