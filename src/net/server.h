// Poll-based async serving front end for core::QueryEngine.
//
// One poll(2) thread owns all sockets: it accepts connections, reassembles
// length-prefixed frames from per-connection read buffers, and flushes
// per-connection write buffers — no thread per connection, no blocking I/O.
// Query frames are admitted straight into the engine via SubmitAsync, so
// the engine's admission semantics ARE the wire semantics:
//
//   * shed-on-overload: a full submission queue resolves immediately as an
//     error frame carrying kOverloaded — the client gets a fast explicit
//     rejection, never a hung connection;
//   * deadline propagation: the query frame's deadline_ms field becomes
//     SubmitOptions::deadline, so a query that expires in queue or between
//     pipeline stages comes back kDeadlineExceeded without burning the
//     remaining stages;
//   * drain-on-stop: frames against a stopped engine answer kUnavailable.
//
// Completion callbacks run on engine worker threads; they serialize the
// response there (the expensive part — VO bytes) and hand the framed bytes
// to the poll thread through a self-pipe-woken outbox, keeping the poll
// thread's work strictly O(bytes moved).
//
// Owner updates (kInsert/kDelete) run on a dedicated update thread — they
// serialize against each other anyway (engine writer lock) and a clone +
// re-sign must never stall the serving loop. The server only accepts them
// when an owner key was provided (EnableUpdates); a public-facing server
// without the key answers kBadRequest.
//
// Untrusted input discipline: every inbound frame goes through the
// hardened wire decoders (net/wire.h). A malformed frame header poisons
// the stream (framing is lost), so the connection is answered with one
// kCorrupted error frame and closed; a well-framed but malformed payload
// only fails that request.

#ifndef IMAGEPROOF_NET_SERVER_H_
#define IMAGEPROOF_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query_engine.h"
#include "net/socket.h"
#include "net/wire.h"

namespace imageproof::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
  size_t max_connections = 64;
  // Serve every query with ServeOptions::settle_exact_topk: all claimed
  // top-k scores are provably exact rather than lower bounds. Shard servers
  // behind a coordinator (shard/coordinator.h RemoteShardBackend) set this —
  // the authenticated cross-shard merge is only sound over exact scores.
  // Changes VO bytes for every query this server answers.
  bool settle_exact_topk = false;
};

class NetServer {
 public:
  // Borrows the engine; it must outlive Stop(). The engine's options
  // (workers, queue capacity, overload policy) define the serving capacity.
  explicit NetServer(core::QueryEngine* engine, ServerOptions options = {});
  ~NetServer();  // calls Stop()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Enables kInsert/kDelete frames, re-signing with `owner_key` (borrowed;
  // must outlive Stop()). Call before Start().
  void EnableUpdates(const crypto::RsaPrivateKey* owner_key);

  // Asynchronous producer of composite (sharded) responses for version-2
  // queries carrying kFrameFlagComposite — typically
  // shard::Coordinator::QueryAsync. The handler MUST NOT block the calling
  // thread (it runs on the poll thread): hand the work to its own executor
  // and invoke `done` exactly once from any thread with the serialized
  // composite bytes or an error status. Call before Start(). Without a
  // handler, composite queries answer kBadRequest.
  using CompositeHandler = std::function<void(
      std::vector<std::vector<float>> features, size_t k, bool compress_vo,
      uint32_t deadline_ms, std::function<void(Result<Bytes>)> done)>;
  void EnableComposite(CompositeHandler handler);

  // Binds + listens, then spawns the poll and update threads. On success
  // port() is the live port.
  Status Start();

  // Stops accepting, closes every connection, joins the threads. Responses
  // still in flight inside the engine are dropped (the peer sees a closed
  // connection — indistinguishable from a crash, which is the point: the
  // client's only trust anchor is verification, not server goodbyes).
  // Idempotent.
  void Stop();

  // Graceful shutdown, the SIGTERM path: stop accepting connections,
  // answer every further query/update frame with a kUnavailable
  // ("server draining") error frame, let responses already inside the
  // engine or the update queue complete and flush to their peers, then
  // Stop(). Returns once drained or after `timeout` (whichever first —
  // on timeout the remaining in-flight responses are dropped exactly as
  // in Stop()). Clients never see a torn reply from a drain: a response
  // either flushes whole or the connection closes at a frame boundary.
  // Idempotent; safe to race with Stop().
  void Drain(std::chrono::milliseconds timeout = std::chrono::seconds(5));

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  uint16_t port() const { return port_; }

  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  // over max_connections
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t protocol_errors = 0;  // corrupt frames / payloads received
    uint64_t drains = 0;            // Drain() calls that began draining
    uint64_t frames_rejected_draining = 0;  // work refused while draining
    uint64_t conns_reset_by_fault = 0;      // net.conn.reset firings
  };
  Counters counters() const;

 private:
  struct Conn {
    uint64_t id = 0;
    Socket sock;
    Bytes read_buf;
    Bytes write_buf;  // framed bytes awaiting send
    size_t write_off = 0;
    bool close_after_flush = false;
  };

  // Completion-side state shared with engine-worker callbacks. Outlives
  // the server object itself (callbacks hold a shared_ptr), so a response
  // completing after Stop() is dropped instead of touching freed state.
  struct Outbox {
    std::mutex mu;
    std::deque<std::pair<uint64_t, Bytes>> ready;  // conn id -> framed bytes
    int wake_fd = -1;  // write end of the poll thread's self-pipe
    bool closed = false;

    // Called from any thread; wakes the poll loop. Drops silently once
    // closed.
    void Push(uint64_t conn_id, Bytes frame);
  };

  struct UpdateTask {
    uint64_t conn_id = 0;
    bool is_insert = false;
    InsertRequest insert;
    DeleteRequest del;
  };

  void PollLoop();
  void UpdateLoop();
  void AcceptNew();
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  void DispatchFrame(Conn* conn, const FrameHeader& header,
                     const Bytes& payload);
  void HandleQuery(Conn* conn, const FrameHeader& header, const Bytes& payload);
  // Appends a frame to the connection's write buffer (poll thread only).
  void SendFrame(Conn* conn, FrameType type, const Bytes& payload);
  void SendError(Conn* conn, WireError code, const std::string& message);
  void DrainOutbox();
  void CloseConn(uint64_t id);
  // Poll thread, while draining: signals Drain() once no response is
  // pending in the engine/update queue/outbox and every write buffer has
  // flushed.
  void MaybeFinishDrain();

  core::QueryEngine* engine_;
  ServerOptions options_;
  const crypto::RsaPrivateKey* owner_key_ = nullptr;
  CompositeHandler composite_handler_;

  Socket listen_sock_;
  uint16_t port_ = 0;
  int pipe_rd_ = -1;  // self-pipe read end (poll thread)
  std::shared_ptr<Outbox> outbox_;

  std::thread poll_thread_;
  std::thread update_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  // Responses owed to peers: incremented at admission (query handed to the
  // engine, update queued), decremented when the framed reply reaches a
  // connection write buffer. Drain completion requires zero.
  std::atomic<uint64_t> pending_replies_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool drained_ = false;  // guarded by drain_mu_
  bool started_ = false;
  std::mutex lifecycle_mu_;  // guards Start/Stop transitions

  std::map<uint64_t, std::unique_ptr<Conn>> conns_;  // poll thread only
  uint64_t next_conn_id_ = 1;

  std::mutex update_mu_;
  std::condition_variable update_cv_;
  std::deque<UpdateTask> update_queue_;

  // Counters are written by the poll/update threads, read from anywhere.
  obs::Counter connections_accepted_;
  obs::Counter connections_rejected_;
  obs::Counter frames_in_;
  obs::Counter frames_out_;
  obs::Counter bytes_in_;
  obs::Counter bytes_out_;
  obs::Counter protocol_errors_;
  obs::Counter drains_;
  obs::Counter frames_rejected_draining_;
  obs::Counter conns_reset_by_fault_;
};

}  // namespace imageproof::net

#endif  // IMAGEPROOF_NET_SERVER_H_
