// Versioned binary wire protocol for serving authenticated retrieval over a
// socket — the boundary the paper's trust model is actually about: the SP is
// untrusted, so every byte a client receives here is adversarial input until
// Client::Verify accepts it.
//
// Frame layout (all integers little-endian, common/bytes.h encodings):
//
//   offset  size  field
//   0       4     magic        0x49504E31 ("1NPI" on the wire)
//   4       2     version      1
//   6       1     frame type   FrameType
//   7       1     flags        kQuery may set kFrameFlagCompressVo (0x01) =
//                 "this client understands group-varint-compressed VO
//                 sections"; every other bit, and any flag on any other
//                 frame type, must be 0 (rejected). Servers only compress
//                 for clients that set the flag, so a v1 client that never
//                 sends it keeps receiving byte-identical uncompressed
//                 frames — the capability is negotiated per query, not
//                 versioned.
//   8       4     payload len  <= kMaxFramePayload
//   12      len   payload      per-type encoding below
//
// Frame types and payloads:
//   kQuery        u32 deadline_ms | varint k | varint n | n x (varint dims,
//                 dims x f32)                                 client -> server
//   kResponse     u64 snapshot_version | blob root_signature |
//                 blob vo_bytes (QueryVO::Serialize bytes)    server -> client
//   kError        u8 wire code | string message               server -> client
//   kStatusRequest  (empty)                                   client -> server
//   kStatusReply  8 x u64 counters | u8 stopped               server -> client
//   kInsert       varint id | varint n | n x (varint cluster, varint freq) |
//                 blob image bytes                            owner  -> server
//   kDelete       varint id                                   owner  -> server
//   kUpdateAck    u64 new_version | u64 lists_updated | u64 nodes_rehashed
//                                                             server -> owner
//
// Error taxonomy on the wire maps the engine's Status codes (PR 4) so a
// remote client degrades exactly like an in-process caller: shed admissions
// come back kOverloaded, expired queries kDeadlineExceeded, a draining
// server kUnavailable, malformed bytes in either direction kCorrupted.
//
// Parsing discipline: every decoder here follows the hardened-deserializer
// rules from storage/serializer.cc — length prefixes are capped against the
// bytes actually present before any allocation, counts have absolute sanity
// bounds, bools decode strictly, trailing bytes reject — and every failure
// is StatusCode::kCorrupted. The wire fuzz matrix (tests/net_frame_test.cc)
// and the MITM cases (tests/security_test.cc) drive mutants through these
// paths.

#ifndef IMAGEPROOF_NET_WIRE_H_
#define IMAGEPROOF_NET_WIRE_H_

#include <string>
#include <vector>

#include "bovw/bovw.h"
#include "common/bytes.h"
#include "common/status.h"

namespace imageproof::net {

inline constexpr uint32_t kWireMagic = 0x49504E31;  // "1NPI" on the wire
inline constexpr uint16_t kWireVersion = 1;
// Protocol version 2 adds sharded scatter-gather serving: a kQuery frame may
// carry kFrameFlagComposite ("answer with a composite VO merged across
// shards"), answered by a kCompositeResponse frame. Version-1 peers never
// see either — clients only emit version-2 headers on composite queries,
// and servers reply in the version of the request — so the capability is
// gated by the frame's own version field, not silently by flags.
inline constexpr uint16_t kWireVersionComposite = 2;
inline constexpr uint16_t kMaxWireVersion = kWireVersionComposite;
inline constexpr size_t kFrameHeaderBytes = 12;
// Header flag on kQuery frames: the client opts in to group-varint VO
// compression (invindex/vo_compress.h). Valid on no other frame type.
inline constexpr uint8_t kFrameFlagCompressVo = 0x01;
// Header flag on version-2 kQuery frames: request a composite (sharded)
// response. Rejected on version-1 frames and on every other frame type.
inline constexpr uint8_t kFrameFlagComposite = 0x02;
// Response frames carry the VO plus result image payloads; 64 MiB bounds a
// hostile length prefix without constraining any realistic deployment.
inline constexpr size_t kMaxFramePayload = 64u << 20;
inline constexpr size_t kMaxQueryFeatures = 4096;
inline constexpr size_t kMaxFeatureDims = 4096;
inline constexpr size_t kMaxErrorMessage = 4096;

enum class FrameType : uint8_t {
  kQuery = 1,
  kResponse = 2,
  kError = 3,
  kStatusRequest = 4,
  kStatusReply = 5,
  kInsert = 6,
  kDelete = 7,
  kUpdateAck = 8,
  // Version-2 only: answer to a composite kQuery. Payload is an opaque
  // shard::CompositeVO byte string (self-describing, hardened parser on the
  // client side) — the wire layer does not interpret it, which keeps ip_net
  // free of a dependency on ip_shard.
  kCompositeResponse = 9,
};

// Wire error codes: the Status taxonomy plus kBadRequest for requests that
// parse but are semantically unserviceable (k = 0, unknown frame type, an
// update against a server holding no owner key).
enum class WireError : uint8_t {
  kBadRequest = 1,
  kOverloaded = 2,
  kDeadlineExceeded = 3,
  kUnavailable = 4,
  kCorrupted = 5,
  kInternal = 6,
};

const char* WireErrorToString(WireError code);
WireError WireErrorFromStatus(StatusCode code);
// The client-side inverse: reconstructs a Status carrying the taxonomy code
// an error frame named (kBadRequest/kInternal fold into kError).
Status StatusFromWireError(uint8_t code, std::string message);
// Process exit code for a Status, shared by the CLI tools so operational
// failures are distinguishable by taxonomy: 0 for OK, otherwise
// 10 + WireErrorFromStatus(code) (11 bad request/generic, 12 overloaded,
// 13 deadline, 14 unavailable, 15 corrupted, 16 internal).
int ExitCodeForStatus(const Status& status);

struct FrameHeader {
  FrameType type = FrameType::kError;
  uint8_t flags = 0;
  uint32_t payload_len = 0;
  uint16_t version = kWireVersion;
};

// Frame assembly. AppendFrame is the streaming form (write buffers);
// EncodeFrame the convenience form. `flags` must follow the per-type rules
// above (only kQuery may carry kFrameFlagCompressVo, and
// kFrameFlagComposite additionally requires `version` >= 2).
void AppendFrame(FrameType type, const Bytes& payload, Bytes* out,
                 uint8_t flags = 0, uint16_t version = kWireVersion);
Bytes EncodeFrame(FrameType type, const Bytes& payload, uint8_t flags = 0,
                  uint16_t version = kWireVersion);

// Validates magic, version, reserved flags, length bound, and the type
// byte. `data` must hold at least kFrameHeaderBytes.
Status DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out);

// Incremental frame extraction from a connection's read buffer.
//   kNeedMore  buffer holds a valid prefix; read more bytes
//   kFrame     one frame consumed from the buffer front into *header/*payload
//   kCorrupt   the buffer cannot begin a valid frame; *error says why, the
//              connection is beyond recovery (framing is lost)
enum class ExtractResult { kNeedMore, kFrame, kCorrupt };
ExtractResult TryExtractFrame(Bytes* buffer, FrameHeader* header,
                              Bytes* payload, Status* error);

// --- per-type payloads ------------------------------------------------------

struct QueryRequest {
  uint32_t deadline_ms = 0;  // 0 = none; propagated to SubmitOptions
  uint64_t k = 0;
  std::vector<std::vector<float>> features;
};
Bytes EncodeQueryRequest(const QueryRequest& req);
Status DecodeQueryRequest(const Bytes& payload, QueryRequest* out);

// The snapshot_version is advisory routing metadata (which snapshot served
// this response); nothing verifies it. Authenticity rests entirely on
// root_signature — checked against the owner's public key the client
// already holds — and on vo_bytes surviving Client::Verify under it.
struct ResponseFrame {
  uint64_t snapshot_version = 0;
  Bytes root_signature;
  Bytes vo_bytes;
};
Bytes EncodeResponse(const ResponseFrame& resp);
Status DecodeResponse(const Bytes& payload, ResponseFrame* out);

struct ErrorFrame {
  WireError code = WireError::kInternal;
  std::string message;
};
Bytes EncodeError(const ErrorFrame& err);
Status DecodeError(const Bytes& payload, ErrorFrame* out);

struct StatusReply {
  uint64_t snapshot_version = 0;
  uint64_t queries_served = 0;
  uint64_t queries_shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t rejected_unavailable = 0;
  uint64_t queue_depth = 0;
  uint64_t in_flight = 0;
  uint64_t updates_applied = 0;
  bool stopped = false;
};
Bytes EncodeStatusReply(const StatusReply& status);
Status DecodeStatusReply(const Bytes& payload, StatusReply* out);

struct InsertRequest {
  uint64_t id = 0;
  bovw::BovwVector bovw;
  Bytes image_data;
};
Bytes EncodeInsertRequest(const InsertRequest& req);
Status DecodeInsertRequest(const Bytes& payload, InsertRequest* out);

struct DeleteRequest {
  uint64_t id = 0;
};
Bytes EncodeDeleteRequest(const DeleteRequest& req);
Status DecodeDeleteRequest(const Bytes& payload, DeleteRequest* out);

struct UpdateAck {
  uint64_t new_version = 0;
  uint64_t lists_updated = 0;
  uint64_t nodes_rehashed = 0;
};
Bytes EncodeUpdateAck(const UpdateAck& ack);
Status DecodeUpdateAck(const Bytes& payload, UpdateAck* out);

}  // namespace imageproof::net

#endif  // IMAGEPROOF_NET_WIRE_H_
