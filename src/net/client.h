// Verifying network client: the remote counterpart of core::Client.
//
// NetClient frames requests, parses every inbound byte through the hardened
// wire decoders (any parse failure -> kCorrupted, allocation caps vs bytes
// actually received), and — the part that matters — runs the paper's full
// Client::Verify on every query response before handing results to the
// caller. A NetClient never returns unverified retrieval results.
//
// Trust model: the client is constructed with the owner-published
// PublicParams it obtained out of band (config, RSA public key, dims).
// Responses carry the serving snapshot's root signature, because updates
// re-sign — the wire-delivered signature is accepted only if it RsaVerifies
// over the roots the VO replay reconstructs, exactly the check an
// in-process client performs against params it already held. Nothing else
// in a response frame is trusted: the snapshot version is advisory
// metadata, and the VO bytes prove themselves or are rejected.

#ifndef IMAGEPROOF_NET_CLIENT_H_
#define IMAGEPROOF_NET_CLIENT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/client.h"
#include "net/socket.h"
#include "net/wire.h"

namespace imageproof::net {

struct NetQueryResult {
  core::VerifiedResults verified;     // Client::Verify output — trustworthy
  uint64_t snapshot_version = 0;      // advisory (unauthenticated)
  Bytes vo_bytes;                     // exact VO bytes off the wire
  size_t response_frame_bytes = 0;    // header + payload (bytes/query metric)
};

class NetClient {
 public:
  // Connects over TCP. `trusted_params` must come from the owner, not from
  // the server being connected to (the root_signature field inside it is
  // unused; each response supplies its own, verified against public_key).
  static Result<NetClient> Connect(const std::string& host, uint16_t port,
                                   core::PublicParams trusted_params);

  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;

  // One framed round trip + full verification. Error statuses carry the
  // server's wire taxonomy: kOverloaded (shed), kDeadlineExceeded,
  // kUnavailable, kCorrupted (malformed bytes in either direction), kError
  // (verification rejected or server-reported request problem).
  Result<NetQueryResult> Query(const std::vector<std::vector<float>>& features,
                               size_t k, uint32_t deadline_ms = 0);

  // Relay form of Query for the shard coordinator: one round trip, hardened
  // frame/payload decoding, NO verification — the returned ResponseFrame is
  // untrusted material destined for a composite VO that the end client
  // verifies. Never hand its contents to anything that treats them as
  // retrieval results.
  Result<ResponseFrame> QueryForRelay(
      const std::vector<std::vector<float>>& features, size_t k,
      uint32_t deadline_ms = 0);

  // Composite (sharded) query: sends a version-2 query frame with
  // kFrameFlagComposite and returns the server's opaque composite-VO bytes,
  // unverified — callers hand them to shard::CompositeClient, which is the
  // only component that can (and must) verify them.
  Result<Bytes> QueryComposite(const std::vector<std::vector<float>>& features,
                               size_t k, uint32_t deadline_ms = 0);

  // Owner-side RPCs (the server must have updates enabled).
  Result<UpdateAck> Insert(uint64_t id, const bovw::BovwVector& bovw,
                           const Bytes& image_data);
  Result<UpdateAck> Delete(uint64_t id);

  Result<StatusReply> ServerStatus();

  // Opt in to group-varint VO compression: subsequent Query() calls set
  // kFrameFlagCompressVo on the request frame, and the hardened VO parsers
  // inside Client::Verify transparently decode the compressed section
  // before any digest is checked — authentication is unchanged. Off by
  // default (byte-identical to a pre-compression client on the wire).
  void set_compress_vo(bool on) { compress_vo_ = on; }
  bool compress_vo() const { return compress_vo_; }

  const core::PublicParams& params() const { return params_; }

 private:
  NetClient(Socket sock, core::PublicParams params)
      : sock_(std::move(sock)), params_(std::move(params)) {}

  // Sends one frame and blocks for exactly one frame back, leaving the
  // reply payload in reply_buf_ (reused across calls — the steady-state
  // receive path reallocates nothing, so closed-loop benches measure the
  // wire, not the allocator). Frame size of the reply is reported through
  // *reply_frame_bytes (may be null). `flags` goes out in the request
  // frame header.
  Result<FrameHeader> RoundTrip(FrameType type, const Bytes& payload,
                                size_t* reply_frame_bytes, uint8_t flags = 0,
                                uint16_t version = kWireVersion);
  // Folds an inbound kError frame into a Status; non-error frames of the
  // wrong type are a protocol violation (kCorrupted).
  static Status UnexpectedOrError(const FrameHeader& header,
                                  const Bytes& payload, FrameType expected);

  Socket sock_;
  core::PublicParams params_;
  bool compress_vo_ = false;
  Bytes read_buf_;   // carries partial frames across RoundTrip calls
  Bytes reply_buf_;  // last reply's payload; capacity reused per request
};

}  // namespace imageproof::net

#endif  // IMAGEPROOF_NET_CLIENT_H_
