#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/fault.h"

namespace imageproof::net {

namespace {

// Semantic sanity for query admission: parseable requests that no engine
// could serve meaningfully are rejected before they cost a queue slot.
constexpr uint64_t kMaxTopK = 1u << 16;

}  // namespace

void NetServer::Outbox::Push(uint64_t conn_id, Bytes frame) {
  std::lock_guard<std::mutex> lock(mu);
  if (closed) return;
  ready.emplace_back(conn_id, std::move(frame));
  // One byte per push keeps the pipe read side O(pushes); the poll thread
  // drains both together. The write is under the same mutex as `closed`,
  // so it can never race the server closing the pipe ends.
  uint8_t b = 1;
  ssize_t ignored = ::write(wake_fd, &b, 1);
  (void)ignored;  // pipe full = poll thread already has a wakeup pending
}

NetServer::NetServer(core::QueryEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

void NetServer::EnableUpdates(const crypto::RsaPrivateKey* owner_key) {
  owner_key_ = owner_key;
}

void NetServer::EnableComposite(CompositeHandler handler) {
  composite_handler_ = std::move(handler);
}

Status NetServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::Error("net: server already started");
  Result<Socket> listener = ListenTcp(options_.host, options_.port, &port_);
  if (!listener.ok()) return listener.status();
  listen_sock_ = std::move(*listener);
  Status s = SetNonBlocking(listen_sock_.fd());
  if (!s.ok()) return s;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Status::Error("net: pipe failed");
  pipe_rd_ = pipe_fds[0];
  (void)SetNonBlocking(pipe_rd_);
  outbox_ = std::make_shared<Outbox>();
  outbox_->wake_fd = pipe_fds[1];
  (void)SetNonBlocking(outbox_->wake_fd);
  stop_.store(false, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
  update_thread_ = std::thread([this] { UpdateLoop(); });
  started_ = true;
  return Status::Ok();
}

void NetServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  // Wake both threads. The outbox push doubles as the poll wakeup.
  update_cv_.notify_all();
  outbox_->Push(0, Bytes{});
  update_thread_.join();
  poll_thread_.join();
  // Sever the completion side: callbacks still running inside engine
  // workers keep the Outbox alive through their shared_ptr but find it
  // closed and drop their frames. The pipe closes under the outbox mutex
  // so no Push can write into a dead fd.
  {
    std::lock_guard<std::mutex> outbox_lock(outbox_->mu);
    outbox_->closed = true;
    ::close(outbox_->wake_fd);
    outbox_->wake_fd = -1;
  }
  ::close(pipe_rd_);
  pipe_rd_ = -1;
  conns_.clear();
  listen_sock_.Close();
  started_ = false;
  draining_.store(false, std::memory_order_release);
  pending_replies_.store(0, std::memory_order_release);
  // Release any Drain() caller racing this Stop(): the server is down,
  // which is as drained as it gets.
  {
    std::lock_guard<std::mutex> drain_lock(drain_mu_);
    drained_ = true;
  }
  drain_cv_.notify_all();
}

void NetServer::Drain(std::chrono::milliseconds timeout) {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_) return;
    if (!draining_.exchange(true, std::memory_order_acq_rel)) {
      drains_.Add();
      std::lock_guard<std::mutex> drain_lock(drain_mu_);
      drained_ = false;
    }
    // Wake the poll thread so it re-evaluates with draining_ set (and
    // completes immediately when nothing is in flight).
    outbox_->Push(0, Bytes{});
  }
  {
    std::unique_lock<std::mutex> drain_lock(drain_mu_);
    drain_cv_.wait_for(drain_lock, timeout, [this] { return drained_; });
  }
  Stop();
}

NetServer::Counters NetServer::counters() const {
  Counters c;
  c.connections_accepted = connections_accepted_.Value();
  c.connections_rejected = connections_rejected_.Value();
  c.frames_in = frames_in_.Value();
  c.frames_out = frames_out_.Value();
  c.bytes_in = bytes_in_.Value();
  c.bytes_out = bytes_out_.Value();
  c.protocol_errors = protocol_errors_.Value();
  c.drains = drains_.Value();
  c.frames_rejected_draining = frames_rejected_draining_.Value();
  c.conns_reset_by_fault = conns_reset_by_fault_.Value();
  return c;
}

void NetServer::PollLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 = listener/pipe)
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_conn.clear();
    // A draining server stops watching the listener: pending connects sit
    // in the backlog until Stop() closes it (the peer then sees a reset —
    // retry-elsewhere territory, same as a crashed server).
    const bool draining = draining_.load(std::memory_order_acquire);
    fds.push_back({listen_sock_.fd(),
                   static_cast<short>(draining ? 0 : POLLIN), 0});
    fd_conn.push_back(0);
    fds.push_back({pipe_rd_, POLLIN, 0});
    fd_conn.push_back(0);
    for (const auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn->write_off < conn->write_buf.size()) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
      fd_conn.push_back(id);
    }
    int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; Stop() still joins us
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (fds[0].revents & POLLIN) AcceptNew();
    if (fds[1].revents & POLLIN) {
      uint8_t drain[256];
      while (::read(pipe_rd_, drain, sizeof(drain)) > 0) {
      }
      DrainOutbox();
    }
    // Connection I/O. Conns may be closed during iteration, so resolve ids
    // against the live map each time.
    for (size_t i = 2; i < fds.size(); ++i) {
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConn(conn->id);
        continue;
      }
      if (fds[i].revents & POLLIN) HandleReadable(conn);
      // Re-check liveness: a read error may have closed it.
      if (conns_.find(fd_conn[i]) == conns_.end()) continue;
      if (fds[i].revents & POLLOUT) HandleWritable(conn);
    }
    if (draining_.load(std::memory_order_acquire)) MaybeFinishDrain();
  }
}

void NetServer::MaybeFinishDrain() {
  if (pending_replies_.load(std::memory_order_acquire) != 0) return;
  for (const auto& [id, conn] : conns_) {
    if (conn->write_off < conn->write_buf.size()) return;  // still flushing
  }
  {
    // A completion may have been pushed but its pipe wakeup not yet
    // consumed; an empty ready queue plus zero pending replies means
    // every response reached (and by the loop above, left) a write
    // buffer.
    std::lock_guard<std::mutex> lock(outbox_->mu);
    if (!outbox_->ready.empty()) return;
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drained_ = true;
  }
  drain_cv_.notify_all();
}

void NetServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_sock_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN/EWOULDBLOCK: drained
    }
    Socket sock(fd);
    if (conns_.size() >= options_.max_connections) {
      // Best-effort shed at the connection level, mirroring query-level
      // shedding: one explicit error frame, then close. The fd is still
      // blocking here, but the frame is tiny (fits any socket buffer).
      connections_rejected_.Add();
      Bytes frame = EncodeFrame(
          FrameType::kError,
          EncodeError({WireError::kOverloaded, "server at connection limit"}));
      (void)SendAll(sock.fd(), frame.data(), frame.size());
      continue;
    }
    if (!SetNonBlocking(sock.fd()).ok()) continue;
    int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->sock = std::move(sock);
    connections_accepted_.Add();
    conns_.emplace(conn->id, std::move(conn));
  }
}

void NetServer::HandleReadable(Conn* conn) {
  // Chaos site: abandon the connection before reading, i.e. at a frame
  // boundary from the peer's point of view — it sees an orderly EOF with
  // no reply, the signature of a crashed/restarted server, which a
  // retrying client must absorb as kUnavailable (never kCorrupted: no
  // partial response bytes have been written for any unanswered request).
  if (fault::InjectFault("net.conn.reset")) {
    conns_reset_by_fault_.Add();
    CloseConn(conn->id);
    return;
  }
  uint8_t buf[64 * 1024];
  while (true) {
    ssize_t n = ::recv(conn->sock.fd(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn->id);
      return;
    }
    if (n == 0) {  // orderly peer close
      CloseConn(conn->id);
      return;
    }
    bytes_in_.Add(static_cast<uint64_t>(n));
    conn->read_buf.insert(conn->read_buf.end(), buf, buf + n);
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  if (conn->close_after_flush) return;  // already poisoned; ignore input
  const uint64_t id = conn->id;
  FrameHeader header;
  Bytes payload;
  Status error;
  while (true) {
    switch (TryExtractFrame(&conn->read_buf, &header, &payload, &error)) {
      case ExtractResult::kNeedMore:
        return;
      case ExtractResult::kCorrupt:
        // Framing is unrecoverable: without a trustworthy length field we
        // cannot find the next frame boundary. One explicit error, then
        // close once it flushes.
        protocol_errors_.Add();
        // Poison BEFORE sending: SendError may flush to completion inline,
        // and the flush is what performs the deferred close.
        conn->close_after_flush = true;
        conn->read_buf.clear();
        SendError(conn, WireError::kCorrupted, error.message());
        return;
      case ExtractResult::kFrame:
        frames_in_.Add();
        DispatchFrame(conn, header, payload);
        // Dispatch may flush, and a flush error closes (frees) the conn.
        if (conns_.find(id) == conns_.end()) return;
        if (conn->close_after_flush) return;
        break;
    }
  }
}

void NetServer::DispatchFrame(Conn* conn, const FrameHeader& header,
                              const Bytes& payload) {
  if (draining_.load(std::memory_order_acquire)) {
    switch (header.type) {
      case FrameType::kQuery:
      case FrameType::kInsert:
      case FrameType::kDelete:
        // No new work while draining — but every refusal is an explicit,
        // whole frame, so the peer can fail over instead of guessing.
        frames_rejected_draining_.Add();
        SendError(conn, WireError::kUnavailable, "server draining");
        return;
      default:
        break;  // status requests still answered; they cost nothing
    }
  }
  switch (header.type) {
    case FrameType::kQuery:
      HandleQuery(conn, header, payload);
      return;
    case FrameType::kStatusRequest: {
      core::EngineStats stats = engine_->Stats();
      StatusReply reply;
      reply.snapshot_version = stats.snapshot_version;
      reply.queries_served = stats.queries_served;
      reply.queries_shed = stats.queries_shed;
      reply.deadline_exceeded = stats.deadline_exceeded;
      reply.rejected_unavailable = stats.rejected_unavailable;
      reply.queue_depth = stats.queue_depth;
      reply.in_flight = stats.in_flight;
      reply.updates_applied = stats.updates_applied;
      reply.stopped = stats.stopped;
      SendFrame(conn, FrameType::kStatusReply, EncodeStatusReply(reply));
      return;
    }
    case FrameType::kInsert: {
      if (owner_key_ == nullptr) {
        SendError(conn, WireError::kBadRequest,
                  "server holds no owner key; updates disabled");
        return;
      }
      UpdateTask task;
      task.conn_id = conn->id;
      task.is_insert = true;
      Status s = DecodeInsertRequest(payload, &task.insert);
      if (!s.ok()) {
        protocol_errors_.Add();
        SendError(conn, WireError::kCorrupted, s.message());
        return;
      }
      pending_replies_.fetch_add(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(update_mu_);
        update_queue_.push_back(std::move(task));
      }
      update_cv_.notify_one();
      return;
    }
    case FrameType::kDelete: {
      if (owner_key_ == nullptr) {
        SendError(conn, WireError::kBadRequest,
                  "server holds no owner key; updates disabled");
        return;
      }
      UpdateTask task;
      task.conn_id = conn->id;
      task.is_insert = false;
      Status s = DecodeDeleteRequest(payload, &task.del);
      if (!s.ok()) {
        protocol_errors_.Add();
        SendError(conn, WireError::kCorrupted, s.message());
        return;
      }
      pending_replies_.fetch_add(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(update_mu_);
        update_queue_.push_back(std::move(task));
      }
      update_cv_.notify_one();
      return;
    }
    case FrameType::kResponse:
    case FrameType::kError:
    case FrameType::kStatusReply:
    case FrameType::kUpdateAck:
    case FrameType::kCompositeResponse:
      // Server-to-client types arriving at the server: a confused or
      // hostile peer. Framing is intact, so answer and keep serving.
      SendError(conn, WireError::kBadRequest, "unexpected frame type");
      return;
  }
  SendError(conn, WireError::kBadRequest, "unexpected frame type");
}

void NetServer::HandleQuery(Conn* conn, const FrameHeader& header,
                            const Bytes& payload) {
  QueryRequest req;
  Status s = DecodeQueryRequest(payload, &req);
  if (!s.ok()) {
    protocol_errors_.Add();
    SendError(conn, WireError::kCorrupted, s.message());
    return;
  }
  if (req.k == 0 || req.k > kMaxTopK || req.features.empty()) {
    SendError(conn, WireError::kBadRequest,
              "query: k and features must be nonzero");
    return;
  }
  if ((header.flags & kFrameFlagComposite) != 0) {
    // Sharded scatter-gather path (wire version 2). The handler fans out on
    // its own executor; its completion hands the opaque composite bytes to
    // the poll thread through the same outbox as engine completions, so
    // drain accounting and connection lifetime work identically.
    if (!composite_handler_) {
      SendError(conn, WireError::kBadRequest,
                "composite serving not enabled on this server");
      return;
    }
    const uint64_t conn_id = conn->id;
    std::shared_ptr<Outbox> outbox = outbox_;
    pending_replies_.fetch_add(1, std::memory_order_acq_rel);
    composite_handler_(
        std::move(req.features), static_cast<size_t>(req.k),
        (header.flags & kFrameFlagCompressVo) != 0, req.deadline_ms,
        [outbox, conn_id](Result<Bytes> composite) {
          Bytes frame;
          if (composite.ok()) {
            frame = EncodeFrame(FrameType::kCompositeResponse, *composite, 0,
                                kWireVersionComposite);
          } else {
            frame = EncodeFrame(
                FrameType::kError,
                EncodeError({WireErrorFromStatus(composite.status().code()),
                             composite.status().message()}));
          }
          outbox->Push(conn_id, std::move(frame));
        });
    return;
  }
  core::SubmitOptions opts;
  opts.deadline = std::chrono::milliseconds(req.deadline_ms);
  // Compression is strictly opt-in per query: only a client that announced
  // it can decode the compressed VO section ever receives one.
  opts.compress_vo = (header.flags & kFrameFlagCompressVo) != 0;
  opts.settle_exact_topk = options_.settle_exact_topk;
  const uint64_t conn_id = conn->id;
  std::shared_ptr<Outbox> outbox = outbox_;
  const size_t k = static_cast<size_t>(req.k);
  // Admitted: the peer is now owed exactly one outbox frame (response or
  // error), which is what drain completion waits on.
  pending_replies_.fetch_add(1, std::memory_order_acq_rel);
  engine_->SubmitAsync(
      std::move(req.features), k, opts,
      [outbox, conn_id](core::EngineResponse r) {
        // Engine worker thread (or inline on the poll thread for immediate
        // shed/unavailable decisions). Serialization happens here so the
        // poll thread only moves bytes.
        Bytes frame;
        if (r.ok()) {
          ResponseFrame resp;
          resp.snapshot_version = r.snapshot->version;
          resp.root_signature = r.snapshot->params.root_signature;
          resp.vo_bytes = r.response.vo.Serialize();
          frame = EncodeFrame(FrameType::kResponse, EncodeResponse(resp));
        } else {
          frame = EncodeFrame(
              FrameType::kError,
              EncodeError({WireErrorFromStatus(r.status.code()),
                           r.status.message()}));
        }
        outbox->Push(conn_id, std::move(frame));
      });
}

void NetServer::UpdateLoop() {
  while (true) {
    UpdateTask task;
    {
      std::unique_lock<std::mutex> lock(update_mu_);
      update_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !update_queue_.empty();
      });
      if (update_queue_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      task = std::move(update_queue_.front());
      update_queue_.pop_front();
    }
    Result<core::UpdateStats> result =
        task.is_insert
            ? engine_->InsertImage(*owner_key_, task.insert.id,
                                   std::move(task.insert.bovw),
                                   std::move(task.insert.image_data))
            : engine_->DeleteImage(*owner_key_, task.del.id);
    Bytes frame;
    if (result.ok()) {
      UpdateAck ack;
      ack.new_version = engine_->Stats().snapshot_version;
      ack.lists_updated = result->lists_updated;
      ack.nodes_rehashed = result->mrkd_nodes_rehashed;
      frame = EncodeFrame(FrameType::kUpdateAck, EncodeUpdateAck(ack));
    } else {
      frame = EncodeFrame(
          FrameType::kError,
          EncodeError({WireErrorFromStatus(result.status().code()),
                       result.status().message()}));
    }
    outbox_->Push(task.conn_id, std::move(frame));
  }
}

void NetServer::SendFrame(Conn* conn, FrameType type, const Bytes& payload) {
  AppendFrame(type, payload, &conn->write_buf);
  frames_out_.Add();
  HandleWritable(conn);  // opportunistic flush; POLLOUT picks up the rest
}

void NetServer::SendError(Conn* conn, WireError code,
                          const std::string& message) {
  SendFrame(conn, FrameType::kError, EncodeError({code, message}));
}

void NetServer::DrainOutbox() {
  std::deque<std::pair<uint64_t, Bytes>> ready;
  {
    std::lock_guard<std::mutex> lock(outbox_->mu);
    ready.swap(outbox_->ready);
  }
  for (auto& [conn_id, frame] : ready) {
    if (frame.empty()) continue;  // Stop()/Drain() wakeup token
    pending_replies_.fetch_sub(1, std::memory_order_acq_rel);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;  // connection died before completion
    Conn* conn = it->second.get();
    conn->write_buf.insert(conn->write_buf.end(), frame.begin(), frame.end());
    frames_out_.Add();
    HandleWritable(conn);
  }
}

void NetServer::HandleWritable(Conn* conn) {
  while (conn->write_off < conn->write_buf.size()) {
    ssize_t n = ::send(conn->sock.fd(), conn->write_buf.data() + conn->write_off,
                       conn->write_buf.size() - conn->write_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConn(conn->id);
      return;
    }
    bytes_out_.Add(static_cast<uint64_t>(n));
    conn->write_off += static_cast<size_t>(n);
  }
  conn->write_buf.clear();
  conn->write_off = 0;
  if (conn->close_after_flush) CloseConn(conn->id);
}

void NetServer::CloseConn(uint64_t id) { conns_.erase(id); }

}  // namespace imageproof::net
