#include "net/wire.h"

namespace imageproof::net {

namespace {

Status Corrupt(const char* what) {
  return Status::Corrupted(std::string("wire: ") + what);
}

// Shared tail check: every payload decoder rejects trailing bytes, so a
// frame's length field cannot smuggle dead bytes past the parser (the same
// zero-dead-wire-bytes rule the storage format follows).
Status ExpectEnd(const ByteReader& r, const char* frame) {
  if (!r.AtEnd()) {
    return Status::Corrupted(std::string("wire: trailing bytes in ") + frame);
  }
  return Status::Ok();
}

}  // namespace

const char* WireErrorToString(WireError code) {
  switch (code) {
    case WireError::kBadRequest:
      return "BAD_REQUEST";
    case WireError::kOverloaded:
      return "OVERLOADED";
    case WireError::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireError::kUnavailable:
      return "UNAVAILABLE";
    case WireError::kCorrupted:
      return "CORRUPTED";
    case WireError::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

WireError WireErrorFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kError:
      return WireError::kBadRequest;
    case StatusCode::kOverloaded:
      return WireError::kOverloaded;
    case StatusCode::kDeadlineExceeded:
      return WireError::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return WireError::kUnavailable;
    case StatusCode::kCorrupted:
      return WireError::kCorrupted;
  }
  return WireError::kInternal;
}

Status StatusFromWireError(uint8_t code, std::string message) {
  switch (static_cast<WireError>(code)) {
    case WireError::kOverloaded:
      return Status::Overloaded(std::move(message));
    case WireError::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case WireError::kUnavailable:
      return Status::Unavailable(std::move(message));
    case WireError::kCorrupted:
      return Status::Corrupted(std::move(message));
    case WireError::kBadRequest:
    case WireError::kInternal:
      return Status::Error(std::move(message));
  }
  return Status::Error(std::move(message));
}

int ExitCodeForStatus(const Status& status) {
  if (status.ok()) return 0;
  return 10 + static_cast<int>(WireErrorFromStatus(status.code()));
}

void AppendFrame(FrameType type, const Bytes& payload, Bytes* out,
                 uint8_t flags, uint16_t version) {
  ByteWriter w;
  w.PutU32(kWireMagic);
  w.PutU8(static_cast<uint8_t>(version & 0xFF));
  w.PutU8(static_cast<uint8_t>(version >> 8));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(flags);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), w.bytes().begin(), w.bytes().end());
  out->insert(out->end(), payload.begin(), payload.end());
}

Bytes EncodeFrame(FrameType type, const Bytes& payload, uint8_t flags,
                  uint16_t version) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(type, payload, &out, flags, version);
  return out;
}

Status DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out) {
  if (size < kFrameHeaderBytes) return Corrupt("short frame header");
  ByteReader r(data, kFrameHeaderBytes);
  uint32_t magic = 0, len = 0;
  uint8_t vlo = 0, vhi = 0, type = 0, flags = 0;
  Status s;
  if (!(s = r.GetU32(&magic)).ok()) return s;
  if (magic != kWireMagic) return Corrupt("bad magic");
  if (!(s = r.GetU8(&vlo)).ok() || !(s = r.GetU8(&vhi)).ok()) return s;
  uint16_t version = static_cast<uint16_t>(vlo | (vhi << 8));
  if (version < kWireVersion || version > kMaxWireVersion) {
    return Corrupt("unknown protocol version");
  }
  if (!(s = r.GetU8(&type)).ok()) return s;
  const uint8_t max_type =
      version >= kWireVersionComposite
          ? static_cast<uint8_t>(FrameType::kCompositeResponse)
          : static_cast<uint8_t>(FrameType::kUpdateAck);
  if (type < static_cast<uint8_t>(FrameType::kQuery) || type > max_type) {
    return Corrupt("unknown frame type");
  }
  if (!(s = r.GetU8(&flags)).ok()) return s;
  // Flags are gated by type AND version: only a query may carry the
  // VO-compression opt-in, only a version-2 query the composite request.
  // Every other bit stays reserved and rejected, so future capabilities
  // fail loudly instead of being silently ignored.
  uint8_t allowed = 0;
  if (type == static_cast<uint8_t>(FrameType::kQuery)) {
    allowed = kFrameFlagCompressVo;
    if (version >= kWireVersionComposite) allowed |= kFrameFlagComposite;
  }
  if ((flags & ~allowed) != 0) return Corrupt("reserved flags set");
  if (!(s = r.GetU32(&len)).ok()) return s;
  if (len > kMaxFramePayload) return Corrupt("frame exceeds size limit");
  out->type = static_cast<FrameType>(type);
  out->flags = flags;
  out->payload_len = len;
  out->version = version;
  return Status::Ok();
}

ExtractResult TryExtractFrame(Bytes* buffer, FrameHeader* header,
                              Bytes* payload, Status* error) {
  if (buffer->size() < kFrameHeaderBytes) {
    // A short buffer only counts as a valid prefix if what is present could
    // still grow into a well-formed header (magic bytes must match so far).
    for (size_t i = 0; i < buffer->size() && i < 4; ++i) {
      if ((*buffer)[i] != static_cast<uint8_t>(kWireMagic >> (8 * i))) {
        *error = Corrupt("bad magic");
        return ExtractResult::kCorrupt;
      }
    }
    return ExtractResult::kNeedMore;
  }
  Status s = DecodeFrameHeader(buffer->data(), buffer->size(), header);
  if (!s.ok()) {
    *error = std::move(s);
    return ExtractResult::kCorrupt;
  }
  size_t total = kFrameHeaderBytes + header->payload_len;
  if (buffer->size() < total) return ExtractResult::kNeedMore;
  payload->assign(buffer->begin() + kFrameHeaderBytes, buffer->begin() + total);
  buffer->erase(buffer->begin(), buffer->begin() + total);
  return ExtractResult::kFrame;
}

// --- query ------------------------------------------------------------------

Bytes EncodeQueryRequest(const QueryRequest& req) {
  ByteWriter w;
  w.PutU32(req.deadline_ms);
  w.PutVarint(req.k);
  w.PutVarint(req.features.size());
  for (const auto& f : req.features) {
    w.PutVarint(f.size());
    for (float v : f) w.PutF32(v);
  }
  return w.Take();
}

Status DecodeQueryRequest(const Bytes& payload, QueryRequest* out) {
  ByteReader r(payload);
  Status s;
  if (!(s = r.GetU32(&out->deadline_ms)).ok()) return s;
  if (!(s = r.GetVarint(&out->k)).ok()) return s;
  uint64_t n = 0;
  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > kMaxQueryFeatures) return Corrupt("absurd feature count");
  if (n > r.remaining()) {  // each feature costs at least its length byte
    return Corrupt("feature count exceeds input size");
  }
  out->features.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t dims = 0;
    if (!(s = r.GetVarint(&dims)).ok()) return s;
    if (dims == 0 || dims > kMaxFeatureDims) return Corrupt("bad feature dims");
    if (dims > r.remaining() / 4) {
      return Corrupt("feature vector exceeds input size");
    }
    auto& f = out->features[i];
    f.resize(dims);
    for (uint64_t d = 0; d < dims; ++d) {
      if (!(s = r.GetF32(&f[d])).ok()) return s;
    }
  }
  return ExpectEnd(r, "query request");
}

// --- response ---------------------------------------------------------------

Bytes EncodeResponse(const ResponseFrame& resp) {
  ByteWriter w;
  w.PutU64(resp.snapshot_version);
  w.PutBlob(resp.root_signature);
  w.PutBlob(resp.vo_bytes);
  return w.Take();
}

Status DecodeResponse(const Bytes& payload, ResponseFrame* out) {
  ByteReader r(payload);
  Status s;
  if (!(s = r.GetU64(&out->snapshot_version)).ok()) return s;
  if (!(s = r.GetBlob(&out->root_signature)).ok()) return s;
  if (!(s = r.GetBlob(&out->vo_bytes)).ok()) return s;
  return ExpectEnd(r, "response");
}

// --- error ------------------------------------------------------------------

Bytes EncodeError(const ErrorFrame& err) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(err.code));
  std::string msg = err.message;
  if (msg.size() > kMaxErrorMessage) msg.resize(kMaxErrorMessage);
  w.PutString(msg);
  return w.Take();
}

Status DecodeError(const Bytes& payload, ErrorFrame* out) {
  ByteReader r(payload);
  uint8_t code = 0;
  Status s;
  if (!(s = r.GetU8(&code)).ok()) return s;
  if (code < static_cast<uint8_t>(WireError::kBadRequest) ||
      code > static_cast<uint8_t>(WireError::kInternal)) {
    return Corrupt("unknown error code");
  }
  out->code = static_cast<WireError>(code);
  if (!(s = r.GetString(&out->message)).ok()) return s;
  if (out->message.size() > kMaxErrorMessage) {
    return Corrupt("oversized error message");
  }
  return ExpectEnd(r, "error frame");
}

// --- status -----------------------------------------------------------------

Bytes EncodeStatusReply(const StatusReply& status) {
  ByteWriter w;
  w.PutU64(status.snapshot_version);
  w.PutU64(status.queries_served);
  w.PutU64(status.queries_shed);
  w.PutU64(status.deadline_exceeded);
  w.PutU64(status.rejected_unavailable);
  w.PutU64(status.queue_depth);
  w.PutU64(status.in_flight);
  w.PutU64(status.updates_applied);
  w.PutU8(status.stopped ? 1 : 0);
  return w.Take();
}

Status DecodeStatusReply(const Bytes& payload, StatusReply* out) {
  ByteReader r(payload);
  Status s;
  if (!(s = r.GetU64(&out->snapshot_version)).ok()) return s;
  if (!(s = r.GetU64(&out->queries_served)).ok()) return s;
  if (!(s = r.GetU64(&out->queries_shed)).ok()) return s;
  if (!(s = r.GetU64(&out->deadline_exceeded)).ok()) return s;
  if (!(s = r.GetU64(&out->rejected_unavailable)).ok()) return s;
  if (!(s = r.GetU64(&out->queue_depth)).ok()) return s;
  if (!(s = r.GetU64(&out->in_flight)).ok()) return s;
  if (!(s = r.GetU64(&out->updates_applied)).ok()) return s;
  uint8_t stopped = 0;
  if (!(s = r.GetU8(&stopped)).ok()) return s;
  if (stopped > 1) return Corrupt("bad bool encoding");
  out->stopped = stopped != 0;
  return ExpectEnd(r, "status reply");
}

// --- updates ----------------------------------------------------------------

Bytes EncodeInsertRequest(const InsertRequest& req) {
  ByteWriter w;
  w.PutVarint(req.id);
  w.PutVarint(req.bovw.entries.size());
  for (const auto& [c, f] : req.bovw.entries) {
    w.PutVarint(c);
    w.PutVarint(f);
  }
  w.PutBlob(req.image_data);
  return w.Take();
}

Status DecodeInsertRequest(const Bytes& payload, InsertRequest* out) {
  ByteReader r(payload);
  Status s;
  if (!(s = r.GetVarint(&out->id)).ok()) return s;
  uint64_t n = 0;
  if (!(s = r.GetVarint(&n)).ok()) return s;
  if (n > r.remaining() / 2) return Corrupt("BoVW size exceeds input");
  out->bovw.entries.resize(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t c = 0, f = 0;
    if (!(s = r.GetVarint(&c)).ok()) return s;
    if (!(s = r.GetVarint(&f)).ok()) return s;
    // Same strictness as the storage format: sorted clusters, nonzero
    // frequencies, and no high varint bits a 32-bit narrow would drop.
    if (i > 0 && c <= prev) return Corrupt("BoVW not sorted");
    if (f == 0) return Corrupt("zero BoVW frequency");
    if (c > 0xFFFFFFFFull || f > 0xFFFFFFFFull) {
      return Corrupt("BoVW entry out of range");
    }
    out->bovw.entries[i] = {static_cast<bovw::ClusterId>(c),
                            static_cast<uint32_t>(f)};
    prev = c;
  }
  if (!(s = r.GetBlob(&out->image_data)).ok()) return s;
  return ExpectEnd(r, "insert request");
}

Bytes EncodeDeleteRequest(const DeleteRequest& req) {
  ByteWriter w;
  w.PutVarint(req.id);
  return w.Take();
}

Status DecodeDeleteRequest(const Bytes& payload, DeleteRequest* out) {
  ByteReader r(payload);
  Status s;
  if (!(s = r.GetVarint(&out->id)).ok()) return s;
  return ExpectEnd(r, "delete request");
}

Bytes EncodeUpdateAck(const UpdateAck& ack) {
  ByteWriter w;
  w.PutU64(ack.new_version);
  w.PutU64(ack.lists_updated);
  w.PutU64(ack.nodes_rehashed);
  return w.Take();
}

Status DecodeUpdateAck(const Bytes& payload, UpdateAck* out) {
  ByteReader r(payload);
  Status s;
  if (!(s = r.GetU64(&out->new_version)).ok()) return s;
  if (!(s = r.GetU64(&out->lists_updated)).ok()) return s;
  if (!(s = r.GetU64(&out->nodes_rehashed)).ok()) return s;
  return ExpectEnd(r, "update ack");
}

}  // namespace imageproof::net
