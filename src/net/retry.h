// Retrying wrapper around NetClient: bounded retries with
// decorrelated-jitter exponential backoff and automatic reconnect, so a
// server drain/restart or a dropped connection costs a caller latency, not
// an error.
//
// Retry taxonomy — the part that carries security weight. Only failures
// that mean "the server, or the path to it, was not available to serve
// this request" are retried:
//
//   kUnavailable       retried   connect refused, clean EOF at a frame
//                                boundary, draining server, stopped engine
//   kOverloaded        retried   explicit shed; backoff is the whole point
//   kDeadlineExceeded  NOT       the caller's time budget is spent; retrying
//                                past it just lies about latency
//   kCorrupted         NOT       torn frame / tampered bytes — an
//                                adversarial SP must not get free retries
//                                to re-probe a verifier
//   kError             NOT       verification rejected or a local bug;
//                                neither improves on a second attempt
//
// Idempotency: Query() and ServerStatus() are read-only, so they retry
// automatically. Insert()/Delete() are NOT idempotent (a duplicated insert
// re-applies); for them only the *connect* is retried — once the request
// has been written, any failure is returned to the caller, who alone knows
// whether re-issuing is safe.
//
// Determinism: backoff jitter comes from a splitmix64 stream seeded by
// RetryPolicy::seed, so a soak run replays the same sleep schedule.

#ifndef IMAGEPROOF_NET_RETRY_H_
#define IMAGEPROOF_NET_RETRY_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/client.h"

namespace imageproof::net {

struct RetryPolicy {
  int max_attempts = 5;  // total tries per operation, including the first
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{2000};
  // Wire deadline stamped on each query attempt when the caller passes 0
  // (0 here too = no per-attempt deadline).
  uint32_t attempt_deadline_ms = 0;
  // Across all attempts and backoff sleeps; an attempt never starts past
  // it (0 = unbounded).
  std::chrono::milliseconds overall_deadline{0};
  uint64_t seed = 0x9E3779B97F4A7C15ULL;  // jitter stream seed
};

struct RetryStats {
  uint64_t attempts = 0;    // operations issued over the wire
  uint64_t retries = 0;     // attempts after the first, per operation
  uint64_t reconnects = 0;  // sockets re-established after a failure
  uint64_t exhausted = 0;   // operations that ran out of attempts/deadline
};

// True when `s` is a failure a retrying client may re-issue an idempotent
// request after (see the taxonomy above).
bool IsRetryableStatus(const Status& s);

class RetryingClient {
 public:
  // Does not connect; the first operation does (and retries the connect
  // under the same policy). `trusted_params` as in NetClient::Connect.
  RetryingClient(std::string host, uint16_t port,
                 core::PublicParams trusted_params, RetryPolicy policy = {});

  Result<NetQueryResult> Query(const std::vector<std::vector<float>>& features,
                               size_t k, uint32_t deadline_ms = 0);
  Result<StatusReply> ServerStatus();

  // Relay / composite forms of Query (see NetClient): read-only, so both
  // retry like Query. Results are UNVERIFIED bytes for a downstream
  // verifier (the shard coordinator or shard::CompositeClient).
  Result<ResponseFrame> QueryForRelay(
      const std::vector<std::vector<float>>& features, size_t k,
      uint32_t deadline_ms = 0);
  Result<Bytes> QueryComposite(const std::vector<std::vector<float>>& features,
                               size_t k, uint32_t deadline_ms = 0);

  // Keepalive / health probe: ONE kStatusRequest round trip, no retries and
  // no backoff — a probe exists to report the link's health now, not to
  // nurse it back. kOk means the server answered (a draining server still
  // does); any failure tears the cached connection down so the next
  // operation reconnects from scratch. `reply` (optional) receives the
  // server's counters on success. The shard coordinator uses this to
  // health-check remote shard backends between queries.
  Status Probe(StatusReply* reply = nullptr);

  // Owner updates: connect retried, request issued at most once (see
  // header comment). A kUnavailable after the write means "unknown whether
  // applied" and is the caller's call.
  Result<UpdateAck> Insert(uint64_t id, const bovw::BovwVector& bovw,
                           const Bytes& image_data);
  Result<UpdateAck> Delete(uint64_t id);

  void set_compress_vo(bool on) { compress_vo_ = on; }
  const RetryStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }
  bool connected() const { return client_.has_value(); }

 private:
  // Connects if needed. Failures come back kUnavailable (retryable).
  Status EnsureConnected();
  void Disconnect();
  // Decorrelated jitter: next sleep is uniform in [base, prev*3], capped.
  std::chrono::milliseconds NextBackoff();
  uint64_t NextRand();
  // Shared retry loop. `op` runs one attempt against a connected client;
  // `retry_op` false = only the connect is retried (non-idempotent ops).
  template <typename T, typename Op>
  Result<T> WithRetries(bool retry_op, Op op);

  std::string host_;
  uint16_t port_;
  core::PublicParams params_;
  RetryPolicy policy_;
  bool compress_vo_ = false;
  bool ever_connected_ = false;
  std::optional<NetClient> client_;
  std::chrono::milliseconds prev_backoff_;
  uint64_t rng_state_;
  RetryStats stats_;
};

}  // namespace imageproof::net

#endif  // IMAGEPROOF_NET_RETRY_H_
