// Minimal POSIX TCP plumbing for the serving layer: an RAII fd, loopback
// listen/connect helpers, and the blocking send/recv loops the client uses.
// Everything reports failures through Status (no exceptions, no errno
// leaking past this file); the async server does its own nonblocking I/O on
// the raw fd.

#ifndef IMAGEPROOF_NET_SOCKET_H_
#define IMAGEPROOF_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace imageproof::net {

// Move-only owner of a file descriptor; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  // Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

// Binds and listens on host:port (port 0 = kernel-assigned ephemeral port;
// *bound_port receives the actual one). SO_REUSEADDR is set so test
// servers restart cleanly.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port);

// Blocking connect. TCP_NODELAY is set: frames are written whole and the
// request/response pattern would otherwise eat Nagle delays.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

// Marks the fd nonblocking (server side: accept loop + per-connection I/O).
Status SetNonBlocking(int fd);

// Blocking exact-count I/O for the client: retry on EINTR, fail on peer
// close or error. RecvSome returns 0..max bytes (0 = orderly peer close).
// SendAll passes MSG_NOSIGNAL so a peer that dropped the connection
// surfaces as EPIPE -> kUnavailable instead of a process-killing SIGPIPE.
Status SendAll(int fd, const uint8_t* data, size_t size);
Result<size_t> RecvSome(int fd, uint8_t* buf, size_t max);

}  // namespace imageproof::net

#endif  // IMAGEPROOF_NET_SOCKET_H_
