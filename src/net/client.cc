#include "net/client.h"

#include <utility>

#include "core/vo.h"

namespace imageproof::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port,
                                     core::PublicParams trusted_params) {
  Result<Socket> sock = ConnectTcp(host, port);
  if (!sock.ok()) return sock.status();
  return NetClient(std::move(sock).value(), std::move(trusted_params));
}

Result<FrameHeader> NetClient::RoundTrip(FrameType type, const Bytes& payload,
                                         size_t* reply_frame_bytes,
                                         uint8_t flags, uint16_t version) {
  Bytes frame = EncodeFrame(type, payload, flags, version);
  Status st = SendAll(sock_.fd(), frame.data(), frame.size());
  if (!st.ok()) return st;

  FrameHeader header;
  for (;;) {
    Status err;
    // The payload lands in the member reply_buf_: vector::assign reuses its
    // capacity, so after the first response of a size class the receive
    // path performs no allocation per request.
    switch (TryExtractFrame(&read_buf_, &header, &reply_buf_, &err)) {
      case ExtractResult::kFrame:
        if (reply_frame_bytes != nullptr) {
          *reply_frame_bytes = kFrameHeaderBytes + reply_buf_.size();
        }
        return header;
      case ExtractResult::kCorrupt:
        return err;
      case ExtractResult::kNeedMore:
        break;
    }
    const size_t old = read_buf_.size();
    read_buf_.resize(old + kReadChunk);
    Result<size_t> got = RecvSome(sock_.fd(), read_buf_.data() + old,
                                  kReadChunk);
    read_buf_.resize(old + (got.ok() ? got.value() : 0));
    if (!got.ok()) return got.status();
    if (got.value() == 0) {
      // EOF taxonomy matters for retries. At a frame boundary (no partial
      // frame buffered) an orderly close is a draining/restarting server:
      // kUnavailable, safe to retry elsewhere. Mid-frame it is a torn
      // reply — indistinguishable from tampering, so kCorrupted, which a
      // retry policy must NOT retry (an adversarial server doesn't get
      // free re-probes by cutting the stream).
      if (read_buf_.empty()) {
        return Status::Unavailable(
            "net: server closed connection at a frame boundary");
      }
      return Status::Corrupted("net: connection closed mid-frame");
    }
  }
}

Status NetClient::UnexpectedOrError(const FrameHeader& header,
                                    const Bytes& payload, FrameType expected) {
  if (header.type == FrameType::kError) {
    ErrorFrame err;
    Status st = DecodeError(payload, &err);
    if (!st.ok()) return st;  // malformed error frame -> kCorrupted
    return StatusFromWireError(static_cast<uint8_t>(err.code),
                               std::move(err.message));
  }
  if (header.type != expected) {
    return Status::Corrupted("net: unexpected frame type from server");
  }
  return Status::Ok();
}

Result<NetQueryResult> NetClient::Query(
    const std::vector<std::vector<float>>& features, size_t k,
    uint32_t deadline_ms) {
  QueryRequest req;
  req.deadline_ms = deadline_ms;
  req.k = k;
  req.features = features;

  size_t frame_bytes = 0;
  auto reply = RoundTrip(FrameType::kQuery, EncodeQueryRequest(req),
                         &frame_bytes,
                         compress_vo_ ? kFrameFlagCompressVo : 0);
  if (!reply.ok()) return reply.status();
  const FrameHeader& header = reply.value();

  Status st = UnexpectedOrError(header, reply_buf_, FrameType::kResponse);
  if (!st.ok()) return st;

  ResponseFrame resp;
  st = DecodeResponse(reply_buf_, &resp);
  if (!st.ok()) return st;

  core::QueryVO vo;
  st = core::QueryVO::Deserialize(resp.vo_bytes, &vo);
  if (!st.ok()) return st;

  // Verify under the trusted params, substituting only the wire-delivered
  // root signature: updates re-sign, and the signature is checked against
  // the owner public key the client already holds, so it cannot be forged —
  // a server lying here fails verification, not the client.
  core::PublicParams params = params_;
  params.root_signature = resp.root_signature;
  core::Client verifier(std::move(params));
  auto verified = verifier.Verify(features, k, vo);
  if (!verified.ok()) return verified.status();

  NetQueryResult out;
  out.verified = std::move(verified.value());
  out.snapshot_version = resp.snapshot_version;
  out.vo_bytes = std::move(resp.vo_bytes);
  out.response_frame_bytes = frame_bytes;
  return out;
}

Result<ResponseFrame> NetClient::QueryForRelay(
    const std::vector<std::vector<float>>& features, size_t k,
    uint32_t deadline_ms) {
  QueryRequest req;
  req.deadline_ms = deadline_ms;
  req.k = k;
  req.features = features;
  auto reply = RoundTrip(FrameType::kQuery, EncodeQueryRequest(req), nullptr,
                         compress_vo_ ? kFrameFlagCompressVo : 0);
  if (!reply.ok()) return reply.status();
  Status st = UnexpectedOrError(reply.value(), reply_buf_, FrameType::kResponse);
  if (!st.ok()) return st;
  ResponseFrame resp;
  st = DecodeResponse(reply_buf_, &resp);
  if (!st.ok()) return st;
  return resp;
}

Result<Bytes> NetClient::QueryComposite(
    const std::vector<std::vector<float>>& features, size_t k,
    uint32_t deadline_ms) {
  QueryRequest req;
  req.deadline_ms = deadline_ms;
  req.k = k;
  req.features = features;
  uint8_t flags = kFrameFlagComposite;
  if (compress_vo_) flags |= kFrameFlagCompressVo;
  auto reply = RoundTrip(FrameType::kQuery, EncodeQueryRequest(req), nullptr,
                         flags, kWireVersionComposite);
  if (!reply.ok()) return reply.status();
  Status st = UnexpectedOrError(reply.value(), reply_buf_,
                                FrameType::kCompositeResponse);
  if (!st.ok()) return st;
  return reply_buf_;
}

Result<UpdateAck> NetClient::Insert(uint64_t id, const bovw::BovwVector& bovw,
                                    const Bytes& image_data) {
  InsertRequest req;
  req.id = id;
  req.bovw = bovw;
  req.image_data = image_data;
  auto reply =
      RoundTrip(FrameType::kInsert, EncodeInsertRequest(req), nullptr);
  if (!reply.ok()) return reply.status();
  Status st =
      UnexpectedOrError(reply.value(), reply_buf_, FrameType::kUpdateAck);
  if (!st.ok()) return st;
  UpdateAck ack;
  st = DecodeUpdateAck(reply_buf_, &ack);
  if (!st.ok()) return st;
  return ack;
}

Result<UpdateAck> NetClient::Delete(uint64_t id) {
  DeleteRequest req;
  req.id = id;
  auto reply =
      RoundTrip(FrameType::kDelete, EncodeDeleteRequest(req), nullptr);
  if (!reply.ok()) return reply.status();
  Status st =
      UnexpectedOrError(reply.value(), reply_buf_, FrameType::kUpdateAck);
  if (!st.ok()) return st;
  UpdateAck ack;
  st = DecodeUpdateAck(reply_buf_, &ack);
  if (!st.ok()) return st;
  return ack;
}

Result<StatusReply> NetClient::ServerStatus() {
  auto reply = RoundTrip(FrameType::kStatusRequest, Bytes{}, nullptr);
  if (!reply.ok()) return reply.status();
  Status st =
      UnexpectedOrError(reply.value(), reply_buf_, FrameType::kStatusReply);
  if (!st.ok()) return st;
  StatusReply status;
  st = DecodeStatusReply(reply_buf_, &status);
  if (!st.ok()) return st;
  return status;
}

}  // namespace imageproof::net
