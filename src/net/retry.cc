#include "net/retry.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace imageproof::net {

bool IsRetryableStatus(const Status& s) {
  // kCorrupted and kError are deliberately absent: a torn/tampered reply or
  // a failed verification must surface, not be papered over by a retry.
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kOverloaded;
}

RetryingClient::RetryingClient(std::string host, uint16_t port,
                               core::PublicParams trusted_params,
                               RetryPolicy policy)
    : host_(std::move(host)),
      port_(port),
      params_(std::move(trusted_params)),
      policy_(policy),
      prev_backoff_(policy.base_backoff),
      rng_state_(policy.seed) {}

uint64_t RetryingClient::NextRand() {
  rng_state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::chrono::milliseconds RetryingClient::NextBackoff() {
  const uint64_t base =
      static_cast<uint64_t>(std::max<int64_t>(0, policy_.base_backoff.count()));
  const uint64_t cap = std::max(
      base, static_cast<uint64_t>(
                std::max<int64_t>(0, policy_.max_backoff.count())));
  // Decorrelated jitter (uniform in [base, 3 * previous]): successive
  // failures spread out exponentially, but two clients hammered by the
  // same outage desynchronize instead of thundering back together.
  const uint64_t prev =
      static_cast<uint64_t>(std::max<int64_t>(0, prev_backoff_.count()));
  const uint64_t hi = std::max(base, prev * 3);
  uint64_t pick = base + NextRand() % (hi - base + 1);
  pick = std::min(pick, cap);
  prev_backoff_ = std::chrono::milliseconds(pick);
  return prev_backoff_;
}

Status RetryingClient::EnsureConnected() {
  if (client_.has_value()) return Status::Ok();
  Result<NetClient> c = NetClient::Connect(host_, port_, params_);
  if (!c.ok()) {
    Status st = c.status();
    // A connect failure is transport unavailability whatever errno said.
    if (st.code() != StatusCode::kUnavailable) {
      return Status::Unavailable(st.message());
    }
    return st;
  }
  client_.emplace(std::move(*c));
  client_->set_compress_vo(compress_vo_);
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  return Status::Ok();
}

void RetryingClient::Disconnect() { client_.reset(); }

template <typename T, typename Op>
Result<T> RetryingClient::WithRetries(bool retry_op, Op op) {
  using Clock = std::chrono::steady_clock;
  const bool bounded = policy_.overall_deadline.count() > 0;
  const Clock::time_point give_up = Clock::now() + policy_.overall_deadline;
  prev_backoff_ = policy_.base_backoff;
  Status last = Status::Unavailable("net: no attempt made");
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      std::chrono::milliseconds pause = NextBackoff();
      if (bounded && Clock::now() + pause >= give_up) break;
      std::this_thread::sleep_for(pause);
      ++stats_.retries;
    }
    Status conn = EnsureConnected();
    if (!conn.ok()) {
      last = conn;
      continue;
    }
    ++stats_.attempts;
    Result<T> r = op(*client_);
    if (r.ok()) return r;
    last = r.status();
    // Transport failure or lost framing poisons the socket; the next
    // attempt reconnects. (kOverloaded arrives as a well-formed error
    // frame — that connection is still good.)
    if (last.code() == StatusCode::kUnavailable ||
        last.code() == StatusCode::kCorrupted) {
      Disconnect();
    }
    if (!retry_op || !IsRetryableStatus(last)) return r;
  }
  ++stats_.exhausted;
  return Result<T>(last);
}

Result<NetQueryResult> RetryingClient::Query(
    const std::vector<std::vector<float>>& features, size_t k,
    uint32_t deadline_ms) {
  const uint32_t attempt_deadline =
      deadline_ms != 0 ? deadline_ms : policy_.attempt_deadline_ms;
  return WithRetries<NetQueryResult>(
      /*retry_op=*/true, [&](NetClient& c) {
        return c.Query(features, k, attempt_deadline);
      });
}

Result<StatusReply> RetryingClient::ServerStatus() {
  return WithRetries<StatusReply>(
      /*retry_op=*/true, [&](NetClient& c) { return c.ServerStatus(); });
}

Result<ResponseFrame> RetryingClient::QueryForRelay(
    const std::vector<std::vector<float>>& features, size_t k,
    uint32_t deadline_ms) {
  const uint32_t attempt_deadline =
      deadline_ms != 0 ? deadline_ms : policy_.attempt_deadline_ms;
  return WithRetries<ResponseFrame>(
      /*retry_op=*/true, [&](NetClient& c) {
        return c.QueryForRelay(features, k, attempt_deadline);
      });
}

Result<Bytes> RetryingClient::QueryComposite(
    const std::vector<std::vector<float>>& features, size_t k,
    uint32_t deadline_ms) {
  const uint32_t attempt_deadline =
      deadline_ms != 0 ? deadline_ms : policy_.attempt_deadline_ms;
  return WithRetries<Bytes>(
      /*retry_op=*/true, [&](NetClient& c) {
        return c.QueryComposite(features, k, attempt_deadline);
      });
}

Status RetryingClient::Probe(StatusReply* reply) {
  Status conn = EnsureConnected();
  if (!conn.ok()) return conn;
  ++stats_.attempts;
  Result<StatusReply> r = client_->ServerStatus();
  if (!r.ok()) {
    // Whatever went wrong, the cached socket is no longer trusted to be
    // healthy; drop it so the next operation starts clean.
    Disconnect();
    return r.status();
  }
  if (reply != nullptr) *reply = *r;
  return Status::Ok();
}

Result<UpdateAck> RetryingClient::Insert(uint64_t id,
                                         const bovw::BovwVector& bovw,
                                         const Bytes& image_data) {
  return WithRetries<UpdateAck>(
      /*retry_op=*/false,
      [&](NetClient& c) { return c.Insert(id, bovw, image_data); });
}

Result<UpdateAck> RetryingClient::Delete(uint64_t id) {
  return WithRetries<UpdateAck>(
      /*retry_op=*/false, [&](NetClient& c) { return c.Delete(id); });
}

}  // namespace imageproof::net
