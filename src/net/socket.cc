#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace imageproof::net {

namespace {

Status Errno(const char* what) {
  std::string msg = std::string("net: ") + what + ": " + std::strerror(errno);
  // Transport-level failures — the peer, or the path to it, went away;
  // nothing was wrong with the request itself. These map to kUnavailable so
  // a retrying client can tell "server restarting, try again" apart from
  // local programming errors (kError) and tampered bytes (kCorrupted).
  switch (errno) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
    case ETIMEDOUT:
    case ENETUNREACH:
    case EHOSTUNREACH:
    case ENOTCONN:
      return Status::Unavailable(std::move(msg));
    default:
      return Status::Error(std::move(msg));
  }
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric IPv4 only (the serving layer binds loopback or an explicit
  // address; name resolution is out of scope for this layer).
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Result<sockaddr_in>(
        Status::Error("net: not a numeric IPv4 address: " + host));
  }
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port) {
  Result<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(sock.fd(), 64) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  Result<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Status SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<size_t> RecvSome(int fd, uint8_t* buf, size_t max) {
  while (true) {
    ssize_t n = ::recv(fd, buf, max, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Result<size_t>(Errno("recv"));
    }
    return static_cast<size_t>(n);
  }
}

}  // namespace imageproof::net
