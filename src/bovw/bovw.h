// Bag-of-visual-words encoding and the similarity measure of Section II-A.
//
//   w_c      = ln(n_D / n_{D,c})                         (cluster weight)
//   p_{I,c}  = w_c * f_{I,c} / ||B_I||                   (impact value)
//   S(Q, I)  = sum over shared clusters of p_{Q,c} p_{I,c}
//
// ||B_I|| is the L2 norm of the raw frequency vector, exactly as written in
// the paper. This module also provides the exact brute-force top-k search
// used as the ground-truth oracle in tests and as the SP's internal result
// computation.

#ifndef IMAGEPROOF_BOVW_BOVW_H_
#define IMAGEPROOF_BOVW_BOVW_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ann/points.h"
#include "ann/rkd_forest.h"

namespace imageproof::bovw {

using ImageId = uint64_t;
using ClusterId = uint32_t;

// Sparse frequency vector, sorted by cluster id, frequencies > 0.
struct BovwVector {
  std::vector<std::pair<ClusterId, uint32_t>> entries;

  // sqrt(sum of squared frequencies); 0 for an empty vector.
  double L2Norm() const;
  uint32_t FrequencyOf(ClusterId c) const;
  bool empty() const { return entries.empty(); }

  bool operator==(const BovwVector&) const = default;
};

// Builds a sorted BovwVector by counting cluster assignments.
BovwVector CountAssignments(const std::vector<ClusterId>& assignments);

// Encodes a set of feature vectors by assigning each to its approximate
// nearest cluster with the AKM forest (the *unauthenticated* baseline
// encoding; the authenticated variant goes through the MRKD-tree).
BovwVector EncodeWithForest(const ann::RkdForest& forest,
                            const std::vector<std::vector<float>>& features);

// Per-cluster idf weights over a corpus.
class ClusterWeights {
 public:
  // n_images_containing[c] = n_{D,c}; clusters never seen get weight 0.
  ClusterWeights(uint64_t num_images, std::vector<uint64_t> n_images_containing);

  double WeightOf(ClusterId c) const {
    return c < weights_.size() ? weights_[c] : 0.0;
  }
  size_t num_clusters() const { return weights_.size(); }

  static ClusterWeights FromCorpus(size_t num_clusters,
                                   const std::vector<BovwVector>& corpus);

  // Wraps explicit weight values (e.g., persisted ones — weights are part
  // of the committed ADS state and may be frozen across corpus updates).
  static ClusterWeights FromRaw(std::vector<double> weights) {
    ClusterWeights w(0, {});
    w.weights_ = std::move(weights);
    return w;
  }

 private:
  std::vector<double> weights_;
};

// Impact value p_{I,c} for one entry of a BoVW vector.
inline double ImpactValue(double weight, uint32_t frequency, double l2_norm) {
  return l2_norm > 0 ? weight * frequency / l2_norm : 0.0;
}

// Sparse impact vector of an image or query.
std::vector<std::pair<ClusterId, double>> ImpactVector(
    const BovwVector& bovw, const ClusterWeights& weights);

// S(Q, I) over sparse impact vectors (both sorted by cluster id).
double Similarity(const std::vector<std::pair<ClusterId, double>>& a,
                  const std::vector<std::pair<ClusterId, double>>& b);

struct ScoredImage {
  ImageId id = 0;
  double score = 0.0;
};

// Exact top-k by full scan of the corpus; deterministic tie-break on
// (score desc, id asc). The ground-truth oracle for every search test.
std::vector<ScoredImage> BruteForceTopK(
    const std::vector<std::pair<ImageId, BovwVector>>& corpus,
    const BovwVector& query, const ClusterWeights& weights, size_t k);

}  // namespace imageproof::bovw

#endif  // IMAGEPROOF_BOVW_BOVW_H_
