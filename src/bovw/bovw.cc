#include "bovw/bovw.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace imageproof::bovw {

double BovwVector::L2Norm() const {
  double acc = 0;
  for (const auto& [c, f] : entries) {
    acc += static_cast<double>(f) * f;
  }
  return std::sqrt(acc);
}

uint32_t BovwVector::FrequencyOf(ClusterId c) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), c,
      [](const auto& e, ClusterId cid) { return e.first < cid; });
  return (it != entries.end() && it->first == c) ? it->second : 0;
}

BovwVector CountAssignments(const std::vector<ClusterId>& assignments) {
  std::map<ClusterId, uint32_t> counts;
  for (ClusterId c : assignments) ++counts[c];
  BovwVector out;
  out.entries.assign(counts.begin(), counts.end());
  return out;
}

BovwVector EncodeWithForest(const ann::RkdForest& forest,
                            const std::vector<std::vector<float>>& features) {
  std::vector<ClusterId> assignments;
  assignments.reserve(features.size());
  for (const auto& f : features) {
    ann::NearestResult r = forest.ApproxNearest(f.data());
    if (r.index >= 0) assignments.push_back(static_cast<ClusterId>(r.index));
  }
  return CountAssignments(assignments);
}

ClusterWeights::ClusterWeights(uint64_t num_images,
                               std::vector<uint64_t> n_images_containing) {
  weights_.resize(n_images_containing.size(), 0.0);
  for (size_t c = 0; c < n_images_containing.size(); ++c) {
    if (n_images_containing[c] > 0) {
      weights_[c] = std::log(static_cast<double>(num_images) /
                             static_cast<double>(n_images_containing[c]));
    }
  }
}

ClusterWeights ClusterWeights::FromCorpus(size_t num_clusters,
                                          const std::vector<BovwVector>& corpus) {
  std::vector<uint64_t> containing(num_clusters, 0);
  for (const BovwVector& v : corpus) {
    for (const auto& [c, f] : v.entries) {
      if (c < num_clusters) ++containing[c];
    }
  }
  return ClusterWeights(corpus.size(), std::move(containing));
}

std::vector<std::pair<ClusterId, double>> ImpactVector(
    const BovwVector& bovw, const ClusterWeights& weights) {
  std::vector<std::pair<ClusterId, double>> out;
  double norm = bovw.L2Norm();
  out.reserve(bovw.entries.size());
  for (const auto& [c, f] : bovw.entries) {
    out.emplace_back(c, ImpactValue(weights.WeightOf(c), f, norm));
  }
  return out;
}

double Similarity(const std::vector<std::pair<ClusterId, double>>& a,
                  const std::vector<std::pair<ClusterId, double>>& b) {
  double acc = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (a[i].first > b[j].first) {
      ++j;
    } else {
      acc += a[i].second * b[j].second;
      ++i;
      ++j;
    }
  }
  return acc;
}

std::vector<ScoredImage> BruteForceTopK(
    const std::vector<std::pair<ImageId, BovwVector>>& corpus,
    const BovwVector& query, const ClusterWeights& weights, size_t k) {
  auto query_impact = ImpactVector(query, weights);
  std::vector<ScoredImage> scored;
  scored.reserve(corpus.size());
  for (const auto& [id, bovw] : corpus) {
    scored.push_back({id, Similarity(query_impact, ImpactVector(bovw, weights))});
  }
  auto better = [](const ScoredImage& a, const ScoredImage& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  };
  if (scored.size() > k) {
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(), better);
    scored.resize(k);
  } else {
    std::sort(scored.begin(), scored.end(), better);
  }
  return scored;
}

}  // namespace imageproof::bovw
