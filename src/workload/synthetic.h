// Synthetic workload generation — the stand-in for MirFlickr1M (see
// DESIGN.md §6).
//
// Two generators are provided:
//   * BoVW-space: sparse corpus vectors with Zipf-distributed cluster
//     popularity (posting-list lengths are heavy-tailed, matching the
//     "most frequency counts are small" observation the paper leans on) and
//     correlated query vectors;
//   * descriptor-space: Gaussian-blob codebooks and query feature vectors
//     scattered around cluster centers, for exercising the full
//     AKM / MRKD-tree pipeline at arbitrary dimensionality (128 for SIFT,
//     64 for the SURF stand-in).

#ifndef IMAGEPROOF_WORKLOAD_SYNTHETIC_H_
#define IMAGEPROOF_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "ann/points.h"
#include "bovw/bovw.h"
#include "common/bytes.h"
#include "common/random.h"

namespace imageproof::workload {

struct CorpusParams {
  size_t num_images = 1000;
  size_t num_clusters = 1000;
  double zipf_s = 1.2;          // cluster-popularity skew
  size_t min_distinct = 10;     // distinct clusters per image
  size_t max_distinct = 40;
  uint32_t max_frequency = 24;  // per-cluster frequency cap (Zipf-tailed)
  // Images come in near-duplicate groups sharing ~70% of their visual
  // words, modeling the repeated scenes/objects of a photo collection.
  // Retrieval queries derived from one group member then have strong
  // matches — the regime CBIR (and the paper's query protocol, which
  // draws query images from the dataset) operates in. A corpus where no
  // two images share more than a word or two would make top-k scores
  // vanishingly small and defeat any early-termination search.
  size_t group_size = 4;
  // No visual word may appear in more than this fraction of the images.
  // Large vocabularies (the paper uses up to 1M words over 1M images) have
  // no stop words: even the most popular word indexes a small slice of the
  // corpus. Without this cap, a scaled-down Zipf vocabulary produces words
  // present in most images, whose giant posting lists any impact-ordered
  // scheme must drain whenever a result image has a low-impact posting
  // there.
  double max_list_fraction = 0.08;
  uint64_t seed = 1;
};

// Sparse BoVW corpus with image ids 0..num_images-1.
std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> GenerateCorpus(
    const CorpusParams& params);

// Query with `num_features` feature-vector assignments drawn from the same
// Zipf popularity (uncorrelated with any particular image).
bovw::BovwVector GenerateQueryBovw(const CorpusParams& params,
                                   size_t num_features, uint64_t seed);

// Query modeling "a photo of something in the database": `1 - noise_fraction`
// of its features quantize to the source image's words (proportionally to
// their frequencies), the rest to Zipf background words.
bovw::BovwVector QueryFromImage(const CorpusParams& params,
                                const bovw::BovwVector& source,
                                size_t num_features, double noise_fraction,
                                uint64_t seed);

// Feature-space version of QueryFromImage for the end-to-end scheme: emits
// descriptor vectors near the codebook centers of the chosen words.
std::vector<std::vector<float>> FeaturesFromBovw(
    const ann::PointSet& codebook, const bovw::BovwVector& source,
    size_t num_features, double coord_noise, double noise_fraction,
    uint64_t seed);

struct CodebookParams {
  size_t num_clusters = 1024;
  size_t dims = 128;  // 128 = SIFT, 64 = SURF stand-in
  double scale = 10.0;  // spread of cluster centers
  // Real SIFT/SURF descriptors concentrate near a low-dimensional manifold,
  // which is what makes randomized k-d trees (and AKM's 32-leaf budget)
  // effective. Cluster centers are therefore sampled in an
  // `intrinsic_dims`-dimensional latent space and embedded into `dims` via
  // a fixed random linear map; i.i.d. Gaussian centers at 128-d would have
  // no such structure and every distance would concentrate to the same
  // value, defeating any tree index (the curse of dimensionality).
  size_t intrinsic_dims = 12;
  uint64_t seed = 2;
};

// Cluster centers with low intrinsic dimensionality (the trained codebook).
ann::PointSet GenerateCodebook(const CodebookParams& params);

// `n` query feature vectors, each a codebook center plus Gaussian noise of
// the given standard deviation — emulating SIFT descriptors of a query
// image whose words exist in the vocabulary.
std::vector<std::vector<float>> GenerateQueryFeatures(
    const ann::PointSet& codebook, size_t n, double noise, uint64_t seed);

// Small opaque per-image payloads standing in for raw image files when
// benchmarking at scales where real pixel data would not fit in memory.
Bytes GenerateImageBlob(bovw::ImageId id, size_t bytes = 64);

// --- Zipfian serving-traffic mix --------------------------------------------
//
// Serving benches (bench/abl_cache, bench/abl_net) need traffic shaped like
// production retrieval load: a fixed population of queries whose request
// frequencies are Zipf-distributed, so a handful of hot queries account for
// most requests while a long tail stays cold. ZipfQueryMix pre-generates a
// pool of distinct feature-space queries (each derived from a corpus image
// through FeaturesFromBovw, so they hit real index content) and then draws
// pool indices Zipf(zipf_s)-distributed. Exact repeats — the same pool
// entry drawn again — are what an epoch-keyed result cache converts into
// hits; zipf_s = 0 degenerates to uniform draws for a worst-case-mix
// control. Everything is seeded: the same params produce the same pool and
// the same draw sequence.

struct QueryMixParams {
  size_t pool_size = 64;        // distinct queries in the population
  size_t num_features = 16;     // features per query
  double zipf_s = 1.0;          // request-popularity skew; 0 = uniform
  double coord_noise = 0.3;     // descriptor jitter around codebook centers
  double noise_fraction = 0.2;  // background (non-source-image) word share
  uint64_t seed = 7;
};

class ZipfQueryMix {
 public:
  // `corpus` supplies the source images queries are derived from (round-
  // robin over the pool); must be nonempty, and `codebook` must be the
  // deployment's codebook so the queries quantize onto indexed words.
  ZipfQueryMix(
      const ann::PointSet& codebook,
      const std::vector<std::pair<bovw::ImageId, bovw::BovwVector>>& corpus,
      const QueryMixParams& params);

  size_t pool_size() const { return pool_.size(); }
  const std::vector<std::vector<float>>& query(size_t index) const {
    return pool_[index];
  }

  // Draws a pool index from `rng` (rank 0 = hottest). Const and stateless,
  // so concurrent bench threads each drive their own seeded Rng stream.
  size_t Draw(Rng& rng) const;

  // Convenience single-threaded stream over the mix's own seeded Rng.
  size_t NextIndex() { return Draw(rng_); }
  const std::vector<std::vector<float>>& Next() { return pool_[NextIndex()]; }

 private:
  std::vector<std::vector<std::vector<float>>> pool_;
  double zipf_s_;
  Rng rng_;
};

}  // namespace imageproof::workload

#endif  // IMAGEPROOF_WORKLOAD_SYNTHETIC_H_
