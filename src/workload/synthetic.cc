#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/random.h"
#include "crypto/hasher.h"

namespace imageproof::workload {

namespace {

// Heavy-tailed per-cluster frequency: most visual words appear once or
// twice in an image, a few dominate. Flat frequencies would make
// within-list impacts nearly constant — the degenerate worst case for
// impact-ordered early termination, which real BoVW data does not exhibit.
uint32_t SampleFrequency(Rng& rng, uint32_t max_frequency) {
  return 1 + static_cast<uint32_t>(rng.NextZipf(max_frequency, 1.6));
}

// Samples `count` words, skewed by Zipf popularity but rejecting words
// whose posting list (tracked in `list_len`) has hit the popularity cap.
void AddRandomWords(Rng& rng, const CorpusParams& params, size_t count,
                    std::vector<uint32_t>& list_len, uint32_t cap,
                    std::map<bovw::ClusterId, uint32_t>* counts) {
  for (size_t i = 0; i < count; ++i) {
    bovw::ClusterId c = 0;
    bool found = false;
    for (int attempt = 0; attempt < 16; ++attempt) {
      c = static_cast<bovw::ClusterId>(
          rng.NextZipf(params.num_clusters, params.zipf_s));
      if (list_len[c] < cap || counts->contains(c)) {
        found = true;
        break;
      }
    }
    if (!found) {
      c = static_cast<bovw::ClusterId>(rng.NextBounded(params.num_clusters));
    }
    (*counts)[c] += SampleFrequency(rng, params.max_frequency);
  }
}

}  // namespace

std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> GenerateCorpus(
    const CorpusParams& params) {
  Rng rng(params.seed);
  std::vector<std::pair<bovw::ImageId, bovw::BovwVector>> corpus;
  corpus.reserve(params.num_images);
  size_t group_size = params.group_size == 0 ? 1 : params.group_size;
  uint32_t cap = static_cast<uint32_t>(
      std::max(8.0, params.max_list_fraction * params.num_images));
  std::vector<uint32_t> list_len(params.num_clusters, 0);

  std::map<bovw::ClusterId, uint32_t> base;
  for (bovw::ImageId id = 0; id < params.num_images; ++id) {
    size_t distinct =
        params.min_distinct +
        rng.NextBounded(params.max_distinct - params.min_distinct + 1);
    size_t shared = distinct * 7 / 10;

    if (id % group_size == 0) {
      // Start a new near-duplicate group with a fresh base scene.
      base.clear();
      AddRandomWords(rng, params, shared, list_len, cap, &base);
    }
    std::map<bovw::ClusterId, uint32_t> counts;
    for (const auto& [c, f] : base) {
      // Per-image jitter of the shared words; occasionally drop one.
      if (rng.NextDouble() < 0.1) continue;
      uint32_t jitter = f + static_cast<uint32_t>(rng.NextBounded(3));
      counts[c] += jitter > 0 ? jitter : 1;
    }
    AddRandomWords(rng, params, distinct - shared, list_len, cap, &counts);
    if (counts.empty()) {
      AddRandomWords(rng, params, 1, list_len, cap, &counts);
    }
    for (const auto& [c, f] : counts) ++list_len[c];

    bovw::BovwVector v;
    v.entries.assign(counts.begin(), counts.end());
    corpus.emplace_back(id, std::move(v));
  }
  return corpus;
}

bovw::BovwVector GenerateQueryBovw(const CorpusParams& params,
                                   size_t num_features, uint64_t seed) {
  Rng rng(seed);
  std::map<bovw::ClusterId, uint32_t> counts;
  for (size_t i = 0; i < num_features; ++i) {
    auto c = static_cast<bovw::ClusterId>(
        rng.NextZipf(params.num_clusters, params.zipf_s));
    counts[c] += 1;
  }
  bovw::BovwVector v;
  v.entries.assign(counts.begin(), counts.end());
  return v;
}

namespace {

// Draws `n` word samples: source words proportionally to their frequency
// with probability 1 - noise_fraction, Zipf background otherwise.
std::map<bovw::ClusterId, uint32_t> SampleQueryWords(
    const CorpusParams& params, const bovw::BovwVector& source,
    size_t num_features, double noise_fraction, Rng& rng) {
  uint64_t total_freq = 0;
  for (const auto& [c, f] : source.entries) total_freq += f;
  std::map<bovw::ClusterId, uint32_t> counts;
  for (size_t i = 0; i < num_features; ++i) {
    if (total_freq > 0 && rng.NextDouble() >= noise_fraction) {
      uint64_t target = rng.NextBounded(total_freq);
      uint64_t acc = 0;
      for (const auto& [c, f] : source.entries) {
        acc += f;
        if (acc > target) {
          counts[c] += 1;
          break;
        }
      }
    } else {
      auto c = static_cast<bovw::ClusterId>(
          rng.NextZipf(params.num_clusters, params.zipf_s));
      counts[c] += 1;
    }
  }
  return counts;
}

}  // namespace

bovw::BovwVector QueryFromImage(const CorpusParams& params,
                                const bovw::BovwVector& source,
                                size_t num_features, double noise_fraction,
                                uint64_t seed) {
  Rng rng(seed);
  auto counts =
      SampleQueryWords(params, source, num_features, noise_fraction, rng);
  bovw::BovwVector v;
  v.entries.assign(counts.begin(), counts.end());
  return v;
}

std::vector<std::vector<float>> FeaturesFromBovw(
    const ann::PointSet& codebook, const bovw::BovwVector& source,
    size_t num_features, double coord_noise, double noise_fraction,
    uint64_t seed) {
  Rng rng(seed);
  CorpusParams params;
  params.num_clusters = codebook.size();
  auto counts =
      SampleQueryWords(params, source, num_features, noise_fraction, rng);
  std::vector<std::vector<float>> out;
  out.reserve(num_features);
  for (const auto& [c, f] : counts) {
    for (uint32_t i = 0; i < f; ++i) {
      std::vector<float> q(codebook.row(c), codebook.row(c) + codebook.dims());
      for (auto& v : q) {
        v += static_cast<float>(rng.NextGaussian() * coord_noise);
      }
      out.push_back(std::move(q));
    }
  }
  return out;
}

ann::PointSet GenerateCodebook(const CodebookParams& params) {
  Rng rng(params.seed);
  size_t latent = std::min(params.intrinsic_dims, params.dims);
  if (latent == 0) latent = params.dims;
  // Fixed random embedding latent -> dims, column-normalized so the output
  // spread matches `scale`.
  std::vector<double> embed(params.dims * latent);
  double inv_sqrt = 1.0 / std::sqrt(static_cast<double>(latent));
  for (auto& v : embed) v = rng.NextGaussian() * inv_sqrt;

  ann::PointSet out(params.dims, 0);
  out.set_dims(params.dims);
  std::vector<double> z(latent);
  std::vector<float> p(params.dims);
  for (size_t c = 0; c < params.num_clusters; ++c) {
    for (auto& v : z) v = rng.NextGaussian() * params.scale;
    for (size_t d = 0; d < params.dims; ++d) {
      double acc = 0;
      for (size_t j = 0; j < latent; ++j) acc += embed[d * latent + j] * z[j];
      p[d] = static_cast<float>(acc);
    }
    out.AppendRow(p);
  }
  return out;
}

std::vector<std::vector<float>> GenerateQueryFeatures(
    const ann::PointSet& codebook, size_t n, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t c = rng.NextBounded(codebook.size());
    std::vector<float> q(codebook.row(c), codebook.row(c) + codebook.dims());
    for (auto& v : q) v += static_cast<float>(rng.NextGaussian() * noise);
    out.push_back(std::move(q));
  }
  return out;
}

ZipfQueryMix::ZipfQueryMix(
    const ann::PointSet& codebook,
    const std::vector<std::pair<bovw::ImageId, bovw::BovwVector>>& corpus,
    const QueryMixParams& params)
    : zipf_s_(params.zipf_s), rng_(params.seed) {
  size_t pool_size = params.pool_size == 0 ? 1 : params.pool_size;
  pool_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    const bovw::BovwVector& source = corpus[i % corpus.size()].second;
    // Per-entry derived seed so pool entries are distinct even when they
    // share a source image (pool larger than corpus).
    pool_.push_back(FeaturesFromBovw(codebook, source, params.num_features,
                                     params.coord_noise, params.noise_fraction,
                                     params.seed * 0x9E3779B97F4A7C15ull + i));
  }
}

size_t ZipfQueryMix::Draw(Rng& rng) const {
  if (zipf_s_ <= 0.0) {
    return static_cast<size_t>(rng.NextBounded(pool_.size()));
  }
  return static_cast<size_t>(rng.NextZipf(pool_.size(), zipf_s_));
}

Bytes GenerateImageBlob(bovw::ImageId id, size_t bytes) {
  Bytes out;
  out.reserve(bytes);
  uint64_t state = crypto::Mix64(id + 0x1234ABCD);
  for (size_t i = 0; i < bytes; ++i) {
    state = crypto::Mix64(state + i);
    out.push_back(static_cast<uint8_t>(state));
  }
  return out;
}

}  // namespace imageproof::workload
