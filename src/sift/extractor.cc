#include "sift/extractor.h"

#include <algorithm>
#include <cmath>

#include "sift/gaussian.h"

namespace imageproof::sift {

namespace {

using image::FloatImage;

constexpr double kPi = 3.14159265358979323846;

struct Octave {
  std::vector<FloatImage> gaussians;  // s + 3 levels
  std::vector<FloatImage> dogs;       // s + 2 levels
};

// True if (x, y) at dogs[level] is a strict 26-neighborhood extremum.
bool IsExtremum(const std::vector<FloatImage>& dogs, int level, int x, int y) {
  float v = dogs[level].at(x, y);
  bool is_max = true, is_min = true;
  for (int dl = -1; dl <= 1; ++dl) {
    const FloatImage& plane = dogs[level + dl];
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dl == 0 && dx == 0 && dy == 0) continue;
        float n = plane.at(x + dx, y + dy);
        if (n >= v) is_max = false;
        if (n <= v) is_min = false;
        if (!is_max && !is_min) return false;
      }
    }
  }
  return is_max || is_min;
}

// Rejects edge-like responses using the 2x2 spatial Hessian trace/det ratio.
bool PassesEdgeTest(const FloatImage& dog, int x, int y, double edge_threshold) {
  float dxx = dog.at(x + 1, y) + dog.at(x - 1, y) - 2 * dog.at(x, y);
  float dyy = dog.at(x, y + 1) + dog.at(x, y - 1) - 2 * dog.at(x, y);
  float dxy = 0.25f * (dog.at(x + 1, y + 1) - dog.at(x - 1, y + 1) -
                       dog.at(x + 1, y - 1) + dog.at(x - 1, y - 1));
  float tr = dxx + dyy;
  float det = dxx * dyy - dxy * dxy;
  if (det <= 0) return false;
  double r = edge_threshold;
  return static_cast<double>(tr) * tr / det < (r + 1) * (r + 1) / r;
}

// Gradient magnitude/orientation at a pixel of a Gaussian level.
inline void GradientAt(const FloatImage& img, int x, int y, float* mag,
                       float* ori) {
  float dx = img.AtClamped(x + 1, y) - img.AtClamped(x - 1, y);
  float dy = img.AtClamped(x, y + 1) - img.AtClamped(x, y - 1);
  *mag = std::sqrt(dx * dx + dy * dy);
  *ori = std::atan2(dy, dx);  // [-pi, pi]
}

// Dominant gradient orientations around (x, y); returns the peak plus any
// secondary peaks above 80% of it.
std::vector<float> DominantOrientations(const FloatImage& img, int x, int y,
                                        double sigma) {
  constexpr int kBins = 36;
  double hist[kBins] = {};
  int radius = static_cast<int>(std::round(3.0 * 1.5 * sigma));
  if (radius < 1) radius = 1;
  double weight_sigma = 1.5 * sigma;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      int px = x + dx, py = y + dy;
      if (px < 1 || px >= img.width() - 1 || py < 1 || py >= img.height() - 1) {
        continue;
      }
      float mag, ori;
      GradientAt(img, px, py, &mag, &ori);
      double w = std::exp(-(dx * dx + dy * dy) / (2 * weight_sigma * weight_sigma));
      int bin = static_cast<int>(std::floor((ori + kPi) / (2 * kPi) * kBins));
      if (bin >= kBins) bin = kBins - 1;
      if (bin < 0) bin = 0;
      hist[bin] += w * mag;
    }
  }
  // Smooth the histogram (circular box filter, applied twice).
  for (int pass = 0; pass < 2; ++pass) {
    double tmp[kBins];
    for (int i = 0; i < kBins; ++i) {
      tmp[i] = (hist[(i + kBins - 1) % kBins] + hist[i] + hist[(i + 1) % kBins]) / 3.0;
    }
    std::copy(tmp, tmp + kBins, hist);
  }

  double peak = *std::max_element(hist, hist + kBins);
  std::vector<float> out;
  if (peak <= 0) return out;
  for (int i = 0; i < kBins; ++i) {
    double prev = hist[(i + kBins - 1) % kBins];
    double next = hist[(i + 1) % kBins];
    if (hist[i] > prev && hist[i] > next && hist[i] >= 0.8 * peak) {
      // Parabolic interpolation of the bin center.
      double denom = prev - 2 * hist[i] + next;
      double offset = denom != 0 ? 0.5 * (prev - next) / denom : 0.0;
      double angle = (i + 0.5 + offset) / kBins * 2 * kPi;  // [0, 2*pi)
      if (angle < 0) angle += 2 * kPi;
      if (angle >= 2 * kPi) angle -= 2 * kPi;
      out.push_back(static_cast<float>(angle));
      if (out.size() >= 2) break;  // at most two orientations per point
    }
  }
  return out;
}

// Computes the grid x grid x bins descriptor at a keypoint on one Gaussian
// level, rotated to the keypoint orientation and trilinearly binned.
std::vector<float> ComputeDescriptor(const FloatImage& img, float x, float y,
                                     double sigma, float orientation, int grid,
                                     int bins) {
  const int d = grid;
  const int n = bins;
  std::vector<float> desc(static_cast<size_t>(d) * d * n, 0.0f);

  double hist_width = 3.0 * sigma;  // pixels per spatial bin
  int radius = static_cast<int>(std::round(hist_width * std::sqrt(2.0) * (d + 1) * 0.5));
  double cos_t = std::cos(orientation), sin_t = std::sin(orientation);

  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      // Rotate the offset into the keypoint frame.
      double rx = (cos_t * dx + sin_t * dy) / hist_width;
      double ry = (-sin_t * dx + cos_t * dy) / hist_width;
      double cbin = rx + d / 2.0 - 0.5;
      double rbin = ry + d / 2.0 - 0.5;
      if (cbin <= -1 || cbin >= d || rbin <= -1 || rbin >= d) continue;

      int px = static_cast<int>(std::round(x)) + dx;
      int py = static_cast<int>(std::round(y)) + dy;
      if (px < 1 || px >= img.width() - 1 || py < 1 || py >= img.height() - 1) {
        continue;
      }
      float mag, ori;
      GradientAt(img, px, py, &mag, &ori);
      double rel_ori = ori - orientation;
      while (rel_ori < 0) rel_ori += 2 * kPi;
      while (rel_ori >= 2 * kPi) rel_ori -= 2 * kPi;
      double obin = rel_ori / (2 * kPi) * n;

      double w = std::exp(-(rx * rx + ry * ry) / (0.5 * d * d)) * mag;

      // Trilinear distribution into (rbin, cbin, obin).
      int r0 = static_cast<int>(std::floor(rbin));
      int c0 = static_cast<int>(std::floor(cbin));
      int o0 = static_cast<int>(std::floor(obin));
      double fr = rbin - r0, fc = cbin - c0, fo = obin - o0;
      for (int ir = 0; ir <= 1; ++ir) {
        int r = r0 + ir;
        if (r < 0 || r >= d) continue;
        double wr = w * (ir == 0 ? 1 - fr : fr);
        for (int ic = 0; ic <= 1; ++ic) {
          int c = c0 + ic;
          if (c < 0 || c >= d) continue;
          double wc = wr * (ic == 0 ? 1 - fc : fc);
          for (int io = 0; io <= 1; ++io) {
            int o = (o0 + io) % n;
            if (o < 0) o += n;
            double wo = wc * (io == 0 ? 1 - fo : fo);
            desc[(static_cast<size_t>(r) * d + c) * n + o] += static_cast<float>(wo);
          }
        }
      }
    }
  }

  // Normalize, clip at 0.2, renormalize (standard SIFT illumination
  // robustness step).
  auto normalize = [&desc]() {
    double norm = 0;
    for (float v : desc) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (float& v : desc) v = static_cast<float>(v / norm);
    }
  };
  normalize();
  for (float& v : desc) v = std::min(v, 0.2f);
  normalize();
  return desc;
}

}  // namespace

std::vector<Feature> SiftExtractor::Extract(const image::Image& img) const {
  std::vector<Feature> features;
  if (img.width() < 16 || img.height() < 16) return features;

  const int s = params_.scales_per_octave;
  const double k = std::pow(2.0, 1.0 / s);

  // Build the Gaussian/DoG pyramid.
  std::vector<Octave> octaves;
  FloatImage base = GaussianBlur(image::FloatImage::From(img), params_.initial_sigma);
  for (int o = 0; o < params_.num_octaves; ++o) {
    if (base.width() < 16 || base.height() < 16) break;
    Octave octave;
    octave.gaussians.push_back(base);
    double sigma = params_.initial_sigma;
    for (int i = 1; i < s + 3; ++i) {
      double next_sigma = params_.initial_sigma * std::pow(k, i);
      double delta = std::sqrt(next_sigma * next_sigma - sigma * sigma);
      octave.gaussians.push_back(GaussianBlur(octave.gaussians.back(), delta));
      sigma = next_sigma;
    }
    for (int i = 0; i < s + 2; ++i) {
      octave.dogs.push_back(Subtract(octave.gaussians[i + 1], octave.gaussians[i]));
    }
    base = Downsample2x(octave.gaussians[s]);  // 2x sigma level seeds the next octave
    octaves.push_back(std::move(octave));
  }

  // Detect extrema and describe them.
  for (int o = 0; o < static_cast<int>(octaves.size()); ++o) {
    const Octave& octave = octaves[o];
    double octave_scale = std::pow(2.0, o);
    int w = octave.dogs[0].width(), h = octave.dogs[0].height();
    for (int level = 1; level <= s; ++level) {
      const FloatImage& dog = octave.dogs[level];
      for (int y = 1; y < h - 1; ++y) {
        for (int x = 1; x < w - 1; ++x) {
          float v = dog.at(x, y);
          if (std::abs(v) < params_.contrast_threshold) continue;
          if (!IsExtremum(octave.dogs, level, x, y)) continue;
          if (!PassesEdgeTest(dog, x, y, params_.edge_threshold)) continue;

          double sigma = params_.initial_sigma * std::pow(k, level);
          const FloatImage& gauss = octave.gaussians[level];
          for (float angle : DominantOrientations(gauss, x, y, sigma)) {
            Feature f;
            f.keypoint.x = static_cast<float>(x * octave_scale);
            f.keypoint.y = static_cast<float>(y * octave_scale);
            f.keypoint.sigma = static_cast<float>(sigma * octave_scale);
            f.keypoint.orientation = angle;
            f.keypoint.response = std::abs(v);
            f.keypoint.octave = o;
            f.keypoint.level = level;
            f.descriptor = ComputeDescriptor(
                gauss, static_cast<float>(x), static_cast<float>(y), sigma,
                angle, params_.descriptor_grid, params_.orientation_bins);
            features.push_back(std::move(f));
          }
        }
      }
    }
  }

  if (params_.max_features > 0 &&
      features.size() > static_cast<size_t>(params_.max_features)) {
    std::partial_sort(features.begin(), features.begin() + params_.max_features,
                      features.end(), [](const Feature& a, const Feature& b) {
                        return a.keypoint.response > b.keypoint.response;
                      });
    features.resize(params_.max_features);
  }
  return features;
}

}  // namespace imageproof::sift
