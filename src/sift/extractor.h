// SIFT-style local feature extraction, from scratch.
//
// The pipeline follows Lowe (IJCV 2004): Gaussian scale-space pyramid,
// difference-of-Gaussians extrema detection with contrast and edge
// rejection, dominant-gradient orientation assignment, and a 4x4 spatial
// grid of gradient-orientation histograms as the descriptor. With 8
// orientation bins the descriptor is 128-dimensional (SIFT); with 4 bins it
// is 64-dimensional, which this repo uses as the stand-in for SURF in the
// paper's SURF experiments (only the dimensionality matters to the ADSs).

#ifndef IMAGEPROOF_SIFT_EXTRACTOR_H_
#define IMAGEPROOF_SIFT_EXTRACTOR_H_

#include <cstdint>
#include <vector>

#include "image/image.h"

namespace imageproof::sift {

struct Keypoint {
  float x = 0;          // position in base-image coordinates
  float y = 0;
  float sigma = 0;      // absolute scale
  float orientation = 0;  // radians in [0, 2*pi)
  float response = 0;   // |DoG| value at the extremum
  int octave = 0;
  int level = 0;        // DoG level within the octave
};

struct Feature {
  Keypoint keypoint;
  std::vector<float> descriptor;  // L2-normalized
};

struct SiftParams {
  int num_octaves = 4;
  int scales_per_octave = 3;       // s; the octave holds s+3 Gaussian levels
  double initial_sigma = 1.6;
  double contrast_threshold = 0.03;  // on DoG values of a [0,1] image
  double edge_threshold = 10.0;      // principal-curvature ratio limit
  int descriptor_grid = 4;           // 4x4 spatial bins
  int orientation_bins = 8;          // 8 -> 128-d (SIFT), 4 -> 64-d (SURF-like)
  int max_features = 0;              // 0 = unlimited; else keep strongest N

  int DescriptorDims() const {
    return descriptor_grid * descriptor_grid * orientation_bins;
  }
};

class SiftExtractor {
 public:
  explicit SiftExtractor(SiftParams params = {}) : params_(params) {}

  // Detects keypoints and computes descriptors for a grayscale image.
  std::vector<Feature> Extract(const image::Image& img) const;

  const SiftParams& params() const { return params_; }

 private:
  SiftParams params_;
};

}  // namespace imageproof::sift

#endif  // IMAGEPROOF_SIFT_EXTRACTOR_H_
