// Separable Gaussian filtering and downsampling for scale-space pyramids.

#ifndef IMAGEPROOF_SIFT_GAUSSIAN_H_
#define IMAGEPROOF_SIFT_GAUSSIAN_H_

#include "image/image.h"

namespace imageproof::sift {

// Convolves with a Gaussian of the given sigma (separable; kernel radius
// ceil(3*sigma); edge-clamped).
image::FloatImage GaussianBlur(const image::FloatImage& src, double sigma);

// Keeps every second pixel in both dimensions.
image::FloatImage Downsample2x(const image::FloatImage& src);

// dst = a - b (same dimensions required).
image::FloatImage Subtract(const image::FloatImage& a, const image::FloatImage& b);

}  // namespace imageproof::sift

#endif  // IMAGEPROOF_SIFT_GAUSSIAN_H_
