#include "sift/gaussian.h"

#include <cmath>
#include <vector>

namespace imageproof::sift {

using image::FloatImage;

FloatImage GaussianBlur(const FloatImage& src, double sigma) {
  int radius = static_cast<int>(std::ceil(3.0 * sigma));
  if (radius < 1) radius = 1;
  std::vector<float> kernel(2 * radius + 1);
  double sum = 0;
  for (int i = -radius; i <= radius; ++i) {
    double v = std::exp(-(i * i) / (2.0 * sigma * sigma));
    kernel[i + radius] = static_cast<float>(v);
    sum += v;
  }
  for (auto& k : kernel) k = static_cast<float>(k / sum);

  int w = src.width(), h = src.height();
  FloatImage tmp(w, h);
  // Horizontal pass.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[i + radius] * src.AtClamped(x + i, y);
      }
      tmp.set(x, y, acc);
    }
  }
  // Vertical pass.
  FloatImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[i + radius] * tmp.AtClamped(x, y + i);
      }
      out.set(x, y, acc);
    }
  }
  return out;
}

FloatImage Downsample2x(const FloatImage& src) {
  int w = src.width() / 2, h = src.height() / 2;
  if (w < 1) w = 1;
  if (h < 1) h = 1;
  FloatImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      out.set(x, y, src.at(2 * x, 2 * y));
    }
  }
  return out;
}

FloatImage Subtract(const FloatImage& a, const FloatImage& b) {
  FloatImage out(a.width(), a.height());
  for (size_t i = 0; i < out.pixels().size(); ++i) {
    out.pixels()[i] = a.pixels()[i] - b.pixels()[i];
  }
  return out;
}

}  // namespace imageproof::sift
