#include "cuckoo/counting_bloom.h"

#include "crypto/hasher.h"
#include "crypto/sha3.h"

namespace imageproof::cuckoo {

BloomParams BloomParams::ForMaxItems(size_t max_items, uint64_t seed) {
  BloomParams p;
  p.seed = seed;
  p.num_counters = static_cast<uint64_t>(max_items) * 10 + 16;
  p.num_hashes = 5;
  return p;
}

CountingBloomFilter::CountingBloomFilter(BloomParams params)
    : params_(params), counters_((params.num_counters + 1) / 2, 0) {}

uint64_t CountingBloomFilter::CounterIndex(uint64_t item,
                                           uint32_t hash_index) const {
  // Kirsch-Mitzenmacher double hashing: h_i = h1 + i*h2.
  uint64_t h1 = crypto::Mix64(item ^ params_.seed);
  uint64_t h2 = crypto::Mix64(item + 0x9E3779B97F4A7C15ULL * (params_.seed | 1));
  return (h1 + hash_index * (h2 | 1)) % params_.num_counters;
}

uint8_t CountingBloomFilter::Get(uint64_t index) const {
  uint8_t byte = counters_[index / 2];
  return (index & 1) ? (byte >> 4) : (byte & 0x0F);
}

void CountingBloomFilter::Set(uint64_t index, uint8_t value) {
  uint8_t& byte = counters_[index / 2];
  if (index & 1) {
    byte = static_cast<uint8_t>((byte & 0x0F) | (value << 4));
  } else {
    byte = static_cast<uint8_t>((byte & 0xF0) | (value & 0x0F));
  }
}

bool CountingBloomFilter::Insert(uint64_t item) {
  // Pre-check saturation so a failed insert leaves no partial state.
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    if (Get(CounterIndex(item, i)) == 15) return false;
  }
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    uint64_t idx = CounterIndex(item, i);
    Set(idx, static_cast<uint8_t>(Get(idx) + 1));
  }
  return true;
}

bool CountingBloomFilter::Contains(uint64_t item) const {
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    if (Get(CounterIndex(item, i)) == 0) return false;
  }
  return true;
}

bool CountingBloomFilter::Delete(uint64_t item) {
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    if (Get(CounterIndex(item, i)) == 0) return false;
  }
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    uint64_t idx = CounterIndex(item, i);
    Set(idx, static_cast<uint8_t>(Get(idx) - 1));
  }
  return true;
}

Bytes CountingBloomFilter::Serialize() const {
  ByteWriter w;
  w.PutU64(params_.num_counters);
  w.PutU32(params_.num_hashes);
  w.PutU64(params_.seed);
  w.PutBytes(counters_.data(), counters_.size());
  return w.Take();
}

crypto::Digest CountingBloomFilter::StateDigest() const {
  return crypto::Sha3(Serialize());
}

}  // namespace imageproof::cuckoo
