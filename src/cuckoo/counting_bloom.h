// Counting Bloom filter — the classical deletable approximate-membership
// alternative the cuckoo filter is measured against (Fan et al., CoNEXT'14,
// Table 1; the ImageProof paper cites the same comparison when motivating
// cuckoo filters: better lookups and less space below 3% FPR).
//
// Four-bit counters, k independent hash functions derived from one 64-bit
// mix. Provided for the abl_membership benchmark and as a drop-in mental
// model; the authenticated index always uses cuckoo filters (they ship in
// VOs, where their compactness matters most).

#ifndef IMAGEPROOF_CUCKOO_COUNTING_BLOOM_H_
#define IMAGEPROOF_CUCKOO_COUNTING_BLOOM_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace imageproof::cuckoo {

struct BloomParams {
  uint64_t num_counters = 1024;  // 4-bit counters
  uint32_t num_hashes = 4;
  uint64_t seed = 0xB100F;

  // Sizes the filter for `max_items` at roughly the same FPR an 8-bit
  // cuckoo filter achieves (~1-2%): ~10 counters per item, 7 hashes would
  // be optimal for plain Bloom; counting Blooms conventionally use 4-5.
  static BloomParams ForMaxItems(size_t max_items, uint64_t seed = 0xB100F);
};

class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(BloomParams params);

  // Returns false on counter saturation (15), which would make future
  // deletions unsafe.
  bool Insert(uint64_t item);
  bool Contains(uint64_t item) const;
  // Removes one occurrence; false if any counter is already zero.
  bool Delete(uint64_t item);

  size_t SizeBytes() const { return counters_.size(); }
  const BloomParams& params() const { return params_; }

  Bytes Serialize() const;
  crypto::Digest StateDigest() const;

 private:
  uint64_t CounterIndex(uint64_t item, uint32_t hash_index) const;
  uint8_t Get(uint64_t index) const;
  void Set(uint64_t index, uint8_t value);

  BloomParams params_;
  std::vector<uint8_t> counters_;  // two 4-bit counters per byte
};

}  // namespace imageproof::cuckoo

#endif  // IMAGEPROOF_CUCKOO_COUNTING_BLOOM_H_
