#include "cuckoo/cuckoo_filter.h"

#include <algorithm>

#include "crypto/hasher.h"
#include "crypto/sha3.h"

namespace imageproof::cuckoo {

using crypto::Mix64;

CuckooParams CuckooParams::ForMaxItems(size_t max_items,
                                       uint32_t fingerprint_bits,
                                       uint64_t seed) {
  CuckooParams p;
  p.fingerprint_bits = fingerprint_bits;
  p.seed = seed;
  // 60% of the maximum posting-list length, as in the paper's setup, with 4
  // slots per bucket; rounded up to a power of two for XOR-based partial-key
  // hashing. The +3 keeps tiny indexes from degenerating to one bucket.
  size_t target = (max_items * 6) / 10 + 3;
  uint32_t buckets = 4;
  while (buckets < target) buckets <<= 1;
  p.num_buckets = buckets;
  return p;
}

CuckooFilter::CuckooFilter(CuckooParams params)
    : params_(params),
      table_(static_cast<size_t>(params.num_buckets) * params.slots_per_bucket, 0),
      kick_state_(params.seed ^ 0x9E3779B97F4A7C15ULL) {}

uint16_t CuckooFilter::Fingerprint(uint64_t item) const {
  uint64_t h = Mix64(item ^ (params_.seed * 0xA24BAED4963EE407ULL));
  uint16_t fp = static_cast<uint16_t>(h & ((1u << params_.fingerprint_bits) - 1));
  return fp == 0 ? 1 : fp;  // 0 marks an empty slot
}

uint32_t CuckooFilter::Bucket1(uint64_t item) const {
  return static_cast<uint32_t>(Mix64(item ^ params_.seed) &
                               (params_.num_buckets - 1));
}

uint32_t CuckooFilter::AltBucket(uint32_t bucket, uint16_t fp) const {
  return (bucket ^ static_cast<uint32_t>(Mix64(fp ^ (params_.seed >> 7)))) &
         (params_.num_buckets - 1);
}

bool CuckooFilter::InsertFingerprint(uint16_t fp, uint32_t bucket) {
  // Try both candidate buckets first.
  uint32_t b2 = AltBucket(bucket, fp);
  for (uint32_t b : {bucket, b2}) {
    for (uint32_t s = 0; s < params_.slots_per_bucket; ++s) {
      size_t pos = static_cast<size_t>(b) * params_.slots_per_bucket + s;
      if (table_[pos] == 0) {
        table_[pos] = fp;
        return true;
      }
    }
  }
  // Random-walk eviction starting from b2 (deterministic state).
  uint32_t cur = b2;
  for (uint32_t kick = 0; kick < params_.max_kicks; ++kick) {
    kick_state_ = Mix64(kick_state_ + kick + 1);
    uint32_t victim = static_cast<uint32_t>(kick_state_ % params_.slots_per_bucket);
    size_t pos = static_cast<size_t>(cur) * params_.slots_per_bucket + victim;
    std::swap(fp, table_[pos]);
    cur = AltBucket(cur, fp);
    for (uint32_t s = 0; s < params_.slots_per_bucket; ++s) {
      size_t p = static_cast<size_t>(cur) * params_.slots_per_bucket + s;
      if (table_[p] == 0) {
        table_[p] = fp;
        return true;
      }
    }
  }
  return false;
}

bool CuckooFilter::Insert(uint64_t item) {
  return InsertFingerprint(Fingerprint(item), Bucket1(item));
}

bool CuckooFilter::Contains(uint64_t item) const {
  uint16_t fp = Fingerprint(item);
  uint32_t b1 = Bucket1(item);
  uint32_t b2 = AltBucket(b1, fp);
  for (uint32_t b : {b1, b2}) {
    for (uint32_t s = 0; s < params_.slots_per_bucket; ++s) {
      if (slot(b, s) == fp) return true;
    }
    if (b1 == b2) break;
  }
  return false;
}

bool CuckooFilter::Delete(uint64_t item, uint32_t* removed_bucket) {
  uint16_t fp = Fingerprint(item);
  uint32_t b1 = Bucket1(item);
  uint32_t b2 = AltBucket(b1, fp);
  for (uint32_t b : {b1, b2}) {
    for (uint32_t s = 0; s < params_.slots_per_bucket; ++s) {
      size_t pos = static_cast<size_t>(b) * params_.slots_per_bucket + s;
      if (table_[pos] == fp) {
        table_[pos] = 0;
        if (removed_bucket) *removed_bucket = b;
        return true;
      }
    }
    if (b1 == b2) break;
  }
  return false;
}

size_t CuckooFilter::Count() const {
  size_t n = 0;
  for (uint16_t v : table_) n += (v != 0);
  return n;
}

Bytes CuckooFilter::Serialize() const {
  ByteWriter w;
  w.PutU32(params_.num_buckets);
  w.PutU32(params_.slots_per_bucket);
  w.PutU32(params_.fingerprint_bits);
  w.PutU64(params_.seed);
  w.PutU32(params_.max_kicks);
  for (uint16_t v : table_) {
    w.PutU8(static_cast<uint8_t>(v & 0xFF));
    if (params_.fingerprint_bits > 8) w.PutU8(static_cast<uint8_t>(v >> 8));
  }
  return w.Take();
}

Result<CuckooFilter> CuckooFilter::Deserialize(const Bytes& data) {
  ByteReader r(data);
  CuckooParams p;
  Status s;
  if (!(s = r.GetU32(&p.num_buckets)).ok()) return s;
  if (!(s = r.GetU32(&p.slots_per_bucket)).ok()) return s;
  if (!(s = r.GetU32(&p.fingerprint_bits)).ok()) return s;
  if (!(s = r.GetU64(&p.seed)).ok()) return s;
  if (!(s = r.GetU32(&p.max_kicks)).ok()) return s;
  if (p.num_buckets == 0 || (p.num_buckets & (p.num_buckets - 1)) != 0 ||
      p.slots_per_bucket == 0 || p.slots_per_bucket > 8 ||
      p.fingerprint_bits == 0 || p.fingerprint_bits > 16) {
    return Status::Error("cuckoo: invalid parameters");
  }
  size_t slots = static_cast<size_t>(p.num_buckets) * p.slots_per_bucket;
  if (slots > (1u << 28)) return Status::Error("cuckoo: table too large");
  CuckooFilter f(p);
  uint16_t mask = static_cast<uint16_t>((1u << p.fingerprint_bits) - 1);
  for (size_t i = 0; i < slots; ++i) {
    uint8_t lo = 0, hi = 0;
    if (!(s = r.GetU8(&lo)).ok()) return s;
    uint16_t v = lo;
    if (p.fingerprint_bits > 8) {
      if (!(s = r.GetU8(&hi)).ok()) return s;
      v |= static_cast<uint16_t>(hi) << 8;
    }
    if ((v & ~mask) != 0) return Status::Error("cuckoo: fingerprint overflow");
    f.table_[i] = v;
  }
  if (!r.AtEnd()) return Status::Error("cuckoo: trailing bytes");
  return f;
}

crypto::Digest CuckooFilter::StateDigest() const {
  return crypto::Sha3(Serialize());
}

uint32_t MaxCountGamma(const std::vector<const CuckooFilter*>& filters) {
  if (filters.empty()) return 0;
  MaxCountTracker tracker(filters);
  return tracker.Gamma();
}

size_t MaxCountTracker::KeyOf(uint32_t bucket, uint16_t fp) const {
  return (static_cast<size_t>(bucket) << fp_bits_) + fp;
}

MaxCountTracker::MaxCountTracker(const std::vector<const CuckooFilter*>& filters) {
  if (filters.empty()) return;
  num_buckets_ = filters[0]->params().num_buckets;
  fp_bits_ = filters[0]->params().fingerprint_bits;
  counts_.assign(static_cast<size_t>(num_buckets_) << fp_bits_, 0);
  histogram_.assign(filters.size() * filters[0]->params().slots_per_bucket + 2, 0);
  for (const CuckooFilter* f : filters) {
    for (uint32_t b = 0; b < num_buckets_; ++b) {
      for (uint32_t s = 0; s < f->params().slots_per_bucket; ++s) {
        uint16_t fp = f->slot(b, s);
        if (fp == 0) continue;
        uint32_t& c = counts_[KeyOf(b, fp)];
        if (c > 0) --histogram_[c];
        ++c;
        ++histogram_[c];
        if (c > current_max_) current_max_ = c;
      }
    }
  }
}

void MaxCountTracker::OnDelete(uint32_t bucket, uint16_t fp) {
  if (counts_.empty()) return;
  uint32_t& c = counts_[KeyOf(bucket, fp)];
  if (c == 0) return;  // deletion of an untracked fingerprint
  --histogram_[c];
  --c;
  if (c > 0) ++histogram_[c];
  while (current_max_ > 0 && histogram_[current_max_] == 0) --current_max_;
}

}  // namespace imageproof::cuckoo
