// Cuckoo filter (Fan, Andersen, Kaminsky, Mitzenmacher — CoNEXT 2014),
// from scratch.
//
// A compact approximate-membership structure storing an f-bit fingerprint
// per item in one of two buckets chosen by partial-key cuckoo hashing
// (bucket2 = bucket1 XOR hash(fingerprint), so relocation never needs the
// original key). ImageProof attaches one filter per Merkle inverted list;
// the paper exploits that filters support *deletion* — the verifier removes
// the revealed (popped) images and then bounds the remaining lists'
// contribution via MaxCount (Algorithm 2).
//
// Every filter in one index shares identical geometry and hash seeds, which
// Lemma 1 of the paper requires: an item's fingerprint and candidate buckets
// must coincide across all filters.

#ifndef IMAGEPROOF_CUCKOO_CUCKOO_FILTER_H_
#define IMAGEPROOF_CUCKOO_CUCKOO_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/digest.h"

namespace imageproof::cuckoo {

struct CuckooParams {
  uint32_t num_buckets = 64;   // power of two
  uint32_t slots_per_bucket = 4;
  uint32_t fingerprint_bits = 8;  // 1..16
  uint64_t seed = 0xF117E2;       // shared across all filters of one index
  uint32_t max_kicks = 500;

  // Geometry sized per the paper's setting: buckets for ~60% of
  // `max_items` at 4 slots, rounded up to a power of two.
  static CuckooParams ForMaxItems(size_t max_items, uint32_t fingerprint_bits = 8,
                                  uint64_t seed = 0xF117E2);

  bool operator==(const CuckooParams&) const = default;
};

class CuckooFilter {
 public:
  explicit CuckooFilter(CuckooParams params);

  // Inserts an item; false iff the filter is too loaded (max_kicks spent).
  bool Insert(uint64_t item);

  // Approximate membership: false => definitely absent.
  bool Contains(uint64_t item) const;

  // Removes one stored occurrence of the item's fingerprint, scanning its
  // first bucket before its alternate bucket (slot order) so SP and client
  // mutate identical states. Returns the bucket the fingerprint was removed
  // from via `removed_bucket` (if non-null); false if absent.
  bool Delete(uint64_t item, uint32_t* removed_bucket = nullptr);

  size_t Count() const;  // occupied slots

  // Slot accessors used by MaxCount: 0 = empty, otherwise fingerprint
  // (fingerprints are never 0).
  uint16_t slot(uint32_t bucket, uint32_t s) const {
    return table_[static_cast<size_t>(bucket) * params_.slots_per_bucket + s];
  }
  const CuckooParams& params() const { return params_; }

  // Fingerprint/buckets of an item under this filter's parameters.
  uint16_t Fingerprint(uint64_t item) const;
  uint32_t Bucket1(uint64_t item) const;
  uint32_t AltBucket(uint32_t bucket, uint16_t fingerprint) const;

  // Canonical serialization (hashed into the inverted-list digest, and
  // shipped inside VOs).
  Bytes Serialize() const;
  static Result<CuckooFilter> Deserialize(const Bytes& data);
  // h(Theta): digest of the canonical serialization.
  crypto::Digest StateDigest() const;

 private:
  bool InsertFingerprint(uint16_t fp, uint32_t bucket);

  CuckooParams params_;
  std::vector<uint16_t> table_;  // num_buckets * slots_per_bucket
  uint64_t kick_state_;          // deterministic eviction-choice state
};

// Algorithm 2 (MaxCount): upper-bounds the number of posting lists that can
// still contain any single image, given the filters of the lists with
// unrevealed postings. Returns gamma = 2 * max over bucket index i of the
// highest multiplicity of one fingerprint in bucket i across all filters.
uint32_t MaxCountGamma(const std::vector<const CuckooFilter*>& filters);

// Incremental version: tracks (bucket, fingerprint) multiplicities across a
// fixed set of filters and keeps gamma current under deletions, so each
// UpdateBounds costs O(1) instead of a full table scan.
class MaxCountTracker {
 public:
  explicit MaxCountTracker(const std::vector<const CuckooFilter*>& filters);

  // Records that `fingerprint` was deleted from `bucket` of one filter.
  void OnDelete(uint32_t bucket, uint16_t fingerprint);

  uint32_t Gamma() const { return 2 * current_max_; }

 private:
  size_t KeyOf(uint32_t bucket, uint16_t fp) const;

  uint32_t num_buckets_ = 0;
  uint32_t fp_bits_ = 0;
  std::vector<uint32_t> counts_;      // (bucket, fp) -> multiplicity
  std::vector<uint64_t> histogram_;   // multiplicity -> how many keys have it
  uint32_t current_max_ = 0;
};

}  // namespace imageproof::cuckoo

#endif  // IMAGEPROOF_CUCKOO_CUCKOO_FILTER_H_
