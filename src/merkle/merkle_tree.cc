#include "merkle/merkle_tree.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/parallel.h"
#include "crypto/hasher.h"

namespace imageproof::merkle {

namespace {

// Largest power of two strictly less than n (n >= 2).
size_t SplitPoint(size_t n) {
  size_t p = 1;
  while (p * 2 < n) p *= 2;
  return p;
}

Digest HashNode(const Digest& left, const Digest& right) {
  return crypto::DigestBuilder()
      .AddU8(0x01)
      .AddDigest(left)
      .AddDigest(right)
      .Finalize();
}

// Batch granularity for the level-parallel build. Fixed (not derived from
// the thread count) so the chunk decomposition — and therefore every digest
// — is identical at any max_threads.
constexpr size_t kBuildChunk = 1024;

}  // namespace

Digest MerkleTree::HashLeaf(const Bytes& payload) {
  return crypto::DigestBuilder().AddU8(0x00).AddBytes(payload).Finalize();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaf_payloads,
                       const MerkleBuildOptions& options)
    : leaf_count_(leaf_payloads.size()) {
  if (leaf_count_ == 0) {
    root_ = Digest::Zero();
    return;
  }
  const unsigned threads =
      leaf_count_ < options.parallel_grain ? 1 : options.max_threads;

  // Level 0: leaf digests, batch-hashed in chunks. Each chunk assembles the
  // 0x00-prefixed messages into one scratch buffer and feeds them to the
  // 4-lane engine.
  levels_.emplace_back(leaf_count_);
  std::vector<Digest>& leaf_level = levels_[0];
  ParallelChunks(
      leaf_count_, kBuildChunk,
      [&](size_t begin, size_t end) {
        const size_t count = end - begin;
        size_t total = 0;
        for (size_t i = begin; i < end; ++i) {
          total += 1 + leaf_payloads[i].size();
        }
        std::vector<uint8_t> scratch(total);
        std::vector<BytesView> msgs;
        msgs.reserve(count);
        size_t off = 0;
        for (size_t i = begin; i < end; ++i) {
          const Bytes& p = leaf_payloads[i];
          scratch[off] = 0x00;
          if (!p.empty()) std::memcpy(scratch.data() + off + 1, p.data(), p.size());
          msgs.emplace_back(scratch.data() + off, 1 + p.size());
          off += 1 + p.size();
        }
        crypto::HashBatch(msgs.data(), leaf_level.data() + begin, count);
      },
      threads);

  // Pair up each level; an odd trailing node is carried to the next level
  // unchanged (it is the right child of some ancestor higher up — the
  // largest-power-of-two split never pads).
  while (levels_.back().size() > 1) {
    const std::vector<Digest>& prev = levels_.back();
    const size_t pairs = prev.size() / 2;
    std::vector<Digest> next((prev.size() + 1) / 2);
    ParallelChunks(
        pairs, kBuildChunk,
        [&](size_t begin, size_t end) {
          const size_t count = end - begin;
          std::vector<Digest> lefts(count);
          std::vector<Digest> rights(count);
          for (size_t i = 0; i < count; ++i) {
            lefts[i] = prev[2 * (begin + i)];
            rights[i] = prev[2 * (begin + i) + 1];
          }
          crypto::HashPairBatch(0x01, lefts.data(), rights.data(),
                                next.data() + begin, count);
        },
        threads);
    if (prev.size() % 2 != 0) next.back() = prev.back();
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

void MerkleTree::UpdateLeaf(size_t index, const Bytes& new_payload) {
  levels_[0][index] = HashLeaf(new_payload);
  size_t idx = index;
  for (size_t k = 0; k + 1 < levels_.size(); ++k) {
    const std::vector<Digest>& cur = levels_[k];
    const size_t parent = idx / 2;
    Digest& dst = levels_[k + 1][parent];
    if (2 * parent + 1 < cur.size()) {
      dst = HashNode(cur[2 * parent], cur[2 * parent + 1]);
    } else {
      dst = cur[2 * parent];  // carried-up odd node: no hash
    }
    idx = parent;
  }
  root_ = levels_.back()[0];
}

const Digest& MerkleTree::NodeDigest(size_t begin, size_t end) const {
  // Every subtree the recursion visits covers [begin, begin + len) with
  // begin divisible by 2^ceil(log2(len)) — so it is exactly the stored
  // node levels_[k][begin >> k].
  const size_t len = end - begin;
  const size_t k =
      len == 1 ? 0 : static_cast<size_t>(std::bit_width(len - 1));
  return levels_[k][begin >> k];
}

void MerkleTree::ProveRange(size_t begin, size_t end,
                            const std::vector<uint32_t>& indices,
                            size_t idx_begin, size_t idx_end,
                            std::vector<Digest>* out) const {
  if (idx_begin == idx_end) {
    // No revealed leaf inside this subtree: emit its digest.
    out->push_back(NodeDigest(begin, end));
    return;
  }
  if (end - begin == 1) return;  // the leaf itself is revealed
  size_t mid = begin + SplitPoint(end - begin);
  size_t idx_mid = idx_begin;
  while (idx_mid < idx_end && indices[idx_mid] < mid) ++idx_mid;
  ProveRange(begin, mid, indices, idx_begin, idx_mid, out);
  ProveRange(mid, end, indices, idx_mid, idx_end, out);
}

std::vector<Digest> MerkleTree::ProveSubset(
    const std::vector<uint32_t>& indices) const {
  std::vector<Digest> out;
  if (leaf_count_ == 0) return out;
  ProveRange(0, leaf_count_, indices, 0, indices.size(), &out);
  return out;
}

namespace {

// Mirrors ProveRange, consuming payloads/proof digests in the same order.
Status VerifyRange(size_t begin, size_t end,
                   const std::vector<uint32_t>& indices,
                   const std::vector<Bytes>& payloads, size_t idx_begin,
                   size_t idx_end, const std::vector<Digest>& proof,
                   size_t* proof_pos, Digest* out) {
  if (idx_begin == idx_end) {
    if (*proof_pos >= proof.size()) {
      return Status::Error("merkle: proof too short");
    }
    *out = proof[(*proof_pos)++];
    return Status::Ok();
  }
  if (end - begin == 1) {
    if (indices[idx_begin] != begin || idx_end - idx_begin != 1) {
      return Status::Error("merkle: indices out of order or duplicated");
    }
    *out = MerkleTree::HashLeaf(payloads[idx_begin]);
    return Status::Ok();
  }
  size_t mid = begin + SplitPoint(end - begin);
  size_t idx_mid = idx_begin;
  while (idx_mid < idx_end && indices[idx_mid] < mid) ++idx_mid;
  Digest left, right;
  Status s = VerifyRange(begin, mid, indices, payloads, idx_begin, idx_mid,
                         proof, proof_pos, &left);
  if (!s.ok()) return s;
  s = VerifyRange(mid, end, indices, payloads, idx_mid, idx_end, proof,
                  proof_pos, &right);
  if (!s.ok()) return s;
  *out = HashNode(left, right);
  return Status::Ok();
}

}  // namespace

Status ReconstructSubsetRoot(size_t leaf_count,
                             const std::vector<uint32_t>& indices,
                             const std::vector<Bytes>& payloads,
                             const std::vector<Digest>& proof,
                             Digest* root_out) {
  if (indices.size() != payloads.size()) {
    return Status::Error("merkle: indices/payloads size mismatch");
  }
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= leaf_count) return Status::Error("merkle: index out of range");
    if (i > 0 && indices[i] <= indices[i - 1]) {
      return Status::Error("merkle: indices not strictly increasing");
    }
  }
  if (leaf_count == 0) {
    if (!indices.empty() || !proof.empty()) {
      return Status::Error("merkle: nonempty proof for empty tree");
    }
    *root_out = Digest::Zero();
    return Status::Ok();
  }
  size_t proof_pos = 0;
  Status s = VerifyRange(0, leaf_count, indices, payloads, 0, indices.size(),
                         proof, &proof_pos, root_out);
  if (!s.ok()) return s;
  if (proof_pos != proof.size()) return Status::Error("merkle: proof too long");
  return Status::Ok();
}

Status MerkleTree::VerifySubset(size_t leaf_count, const Digest& root,
                                const std::vector<uint32_t>& indices,
                                const std::vector<Bytes>& payloads,
                                const std::vector<Digest>& proof) {
  Digest computed = Digest::Zero();
  Status s = ReconstructSubsetRoot(leaf_count, indices, payloads, proof,
                                   &computed);
  if (!s.ok()) return s;
  if (leaf_count > 0 && computed != root) {
    return Status::Error("merkle: root mismatch");
  }
  return Status::Ok();
}

}  // namespace imageproof::merkle
