#include "merkle/merkle_tree.h"

#include <algorithm>

#include "crypto/hasher.h"

namespace imageproof::merkle {

namespace {

// Largest power of two strictly less than n (n >= 2).
size_t SplitPoint(size_t n) {
  size_t p = 1;
  while (p * 2 < n) p *= 2;
  return p;
}

Digest HashNode(const Digest& left, const Digest& right) {
  return crypto::DigestBuilder()
      .AddU8(0x01)
      .AddDigest(left)
      .AddDigest(right)
      .Finalize();
}

}  // namespace

Digest MerkleTree::HashLeaf(const Bytes& payload) {
  return crypto::DigestBuilder().AddU8(0x00).AddBytes(payload).Finalize();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaf_payloads)
    : leaf_count_(leaf_payloads.size()) {
  leaf_digests_.reserve(leaf_count_);
  for (const Bytes& p : leaf_payloads) leaf_digests_.push_back(HashLeaf(p));
  root_ = leaf_count_ == 0 ? Digest::Zero() : SubtreeDigest(0, leaf_count_);
}

Digest MerkleTree::SubtreeDigest(size_t begin, size_t end) const {
  if (end - begin == 1) return leaf_digests_[begin];
  size_t mid = begin + SplitPoint(end - begin);
  return HashNode(SubtreeDigest(begin, mid), SubtreeDigest(mid, end));
}

void MerkleTree::ProveRange(size_t begin, size_t end,
                            const std::vector<uint32_t>& indices,
                            size_t idx_begin, size_t idx_end,
                            std::vector<Digest>* out) const {
  if (idx_begin == idx_end) {
    // No revealed leaf inside this subtree: emit its digest.
    out->push_back(SubtreeDigest(begin, end));
    return;
  }
  if (end - begin == 1) return;  // the leaf itself is revealed
  size_t mid = begin + SplitPoint(end - begin);
  size_t idx_mid = idx_begin;
  while (idx_mid < idx_end && indices[idx_mid] < mid) ++idx_mid;
  ProveRange(begin, mid, indices, idx_begin, idx_mid, out);
  ProveRange(mid, end, indices, idx_mid, idx_end, out);
}

std::vector<Digest> MerkleTree::ProveSubset(
    const std::vector<uint32_t>& indices) const {
  std::vector<Digest> out;
  if (leaf_count_ == 0) return out;
  ProveRange(0, leaf_count_, indices, 0, indices.size(), &out);
  return out;
}

namespace {

// Mirrors ProveRange, consuming payloads/proof digests in the same order.
Status VerifyRange(size_t begin, size_t end,
                   const std::vector<uint32_t>& indices,
                   const std::vector<Bytes>& payloads, size_t idx_begin,
                   size_t idx_end, const std::vector<Digest>& proof,
                   size_t* proof_pos, Digest* out) {
  if (idx_begin == idx_end) {
    if (*proof_pos >= proof.size()) {
      return Status::Error("merkle: proof too short");
    }
    *out = proof[(*proof_pos)++];
    return Status::Ok();
  }
  if (end - begin == 1) {
    if (indices[idx_begin] != begin || idx_end - idx_begin != 1) {
      return Status::Error("merkle: indices out of order or duplicated");
    }
    *out = MerkleTree::HashLeaf(payloads[idx_begin]);
    return Status::Ok();
  }
  size_t mid = begin + SplitPoint(end - begin);
  size_t idx_mid = idx_begin;
  while (idx_mid < idx_end && indices[idx_mid] < mid) ++idx_mid;
  Digest left, right;
  Status s = VerifyRange(begin, mid, indices, payloads, idx_begin, idx_mid,
                         proof, proof_pos, &left);
  if (!s.ok()) return s;
  s = VerifyRange(mid, end, indices, payloads, idx_mid, idx_end, proof,
                  proof_pos, &right);
  if (!s.ok()) return s;
  *out = HashNode(left, right);
  return Status::Ok();
}

}  // namespace

Status ReconstructSubsetRoot(size_t leaf_count,
                             const std::vector<uint32_t>& indices,
                             const std::vector<Bytes>& payloads,
                             const std::vector<Digest>& proof,
                             Digest* root_out) {
  if (indices.size() != payloads.size()) {
    return Status::Error("merkle: indices/payloads size mismatch");
  }
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= leaf_count) return Status::Error("merkle: index out of range");
    if (i > 0 && indices[i] <= indices[i - 1]) {
      return Status::Error("merkle: indices not strictly increasing");
    }
  }
  if (leaf_count == 0) {
    if (!indices.empty() || !proof.empty()) {
      return Status::Error("merkle: nonempty proof for empty tree");
    }
    *root_out = Digest::Zero();
    return Status::Ok();
  }
  size_t proof_pos = 0;
  Status s = VerifyRange(0, leaf_count, indices, payloads, 0, indices.size(),
                         proof, &proof_pos, root_out);
  if (!s.ok()) return s;
  if (proof_pos != proof.size()) return Status::Error("merkle: proof too long");
  return Status::Ok();
}

Status MerkleTree::VerifySubset(size_t leaf_count, const Digest& root,
                                const std::vector<uint32_t>& indices,
                                const std::vector<Bytes>& payloads,
                                const std::vector<Digest>& proof) {
  Digest computed = Digest::Zero();
  Status s = ReconstructSubsetRoot(leaf_count, indices, payloads, proof,
                                   &computed);
  if (!s.ok()) return s;
  if (leaf_count > 0 && computed != root) {
    return Status::Error("merkle: root mismatch");
  }
  return Status::Ok();
}

}  // namespace imageproof::merkle
