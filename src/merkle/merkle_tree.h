// Generic Merkle hash tree with multi-leaf subset proofs (RFC 6962-style
// unbalanced construction with domain-separated leaf/node hashing).
//
// ImageProof uses this for Optimization A (Section VI-A): each codebook
// cluster's dimensions are committed with an MH-tree so the SP can reveal
// only the handful of dimensions needed to prove a candidate is not the
// nearest neighbor.

#ifndef IMAGEPROOF_MERKLE_MERKLE_TREE_H_
#define IMAGEPROOF_MERKLE_MERKLE_TREE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/digest.h"

namespace imageproof::merkle {

using crypto::Digest;

// Commits a sequence of leaf payloads. Leaves are hashed with a 0x00 prefix
// and internal nodes with a 0x01 prefix (second-preimage domain separation).
// For n > 1 leaves the split point is the largest power of two < n.
class MerkleTree {
 public:
  explicit MerkleTree(const std::vector<Bytes>& leaf_payloads);

  size_t leaf_count() const { return leaf_count_; }
  const Digest& root() const { return root_; }

  static Digest HashLeaf(const Bytes& payload);

  // Proof that the leaves at `indices` (sorted, unique, in range) have the
  // claimed payloads: the digests of the maximal subtrees containing no
  // revealed leaf, in traversal order.
  std::vector<Digest> ProveSubset(const std::vector<uint32_t>& indices) const;

  // Recomputes the root from revealed payloads + proof digests. `indices`
  // must be sorted and unique; `payloads` aligns with `indices`.
  static Status VerifySubset(size_t leaf_count, const Digest& root,
                             const std::vector<uint32_t>& indices,
                             const std::vector<Bytes>& payloads,
                             const std::vector<Digest>& proof);

 private:
  // Digest of the subtree covering leaves [begin, end).
  Digest SubtreeDigest(size_t begin, size_t end) const;
  void ProveRange(size_t begin, size_t end, const std::vector<uint32_t>& indices,
                  size_t idx_begin, size_t idx_end,
                  std::vector<Digest>* out) const;

  size_t leaf_count_ = 0;
  std::vector<Digest> leaf_digests_;
  // Memoized digests keyed by (begin, end) are unnecessary: the tree is
  // small (codebook dimensionality), so digests are recomputed on demand
  // except for the cached root.
  Digest root_;
};

// Recomputes the root implied by a subset proof without comparing it to a
// known value (the caller embeds the result in a larger digest). Same input
// contract as MerkleTree::VerifySubset.
Status ReconstructSubsetRoot(size_t leaf_count,
                             const std::vector<uint32_t>& indices,
                             const std::vector<Bytes>& payloads,
                             const std::vector<Digest>& proof, Digest* root_out);

}  // namespace imageproof::merkle

#endif  // IMAGEPROOF_MERKLE_MERKLE_TREE_H_
