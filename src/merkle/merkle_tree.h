// Generic Merkle hash tree with multi-leaf subset proofs (RFC 6962-style
// unbalanced construction with domain-separated leaf/node hashing).
//
// ImageProof uses this for Optimization A (Section VI-A): each codebook
// cluster's dimensions are committed with an MH-tree so the SP can reveal
// only the handful of dimensions needed to prove a candidate is not the
// nearest neighbor.
//
// Construction is level-by-level: level 0 is the leaf digests and each
// higher level hashes adjacent pairs, carrying an odd trailing node up
// unchanged. That bottom-up order is exactly the recursive
// largest-power-of-two-split tree (every recursion subtree [b, e) has b
// divisible by 2^ceil(log2(e-b)), so it *is* the level-k node at index
// b >> k), which lets the build run through the batch digest API
// (crypto::HashBatch) and across threads (common/parallel.h) while staying
// bit-identical to the serial recursion at any thread count. All interior
// digests are retained, so subset proofs are O(revealed * log n) lookups
// instead of O(n) rehashing, and a single-leaf change recomputes only the
// leaf-to-root path (UpdateLeaf, O(log n) hashes).

#ifndef IMAGEPROOF_MERKLE_MERKLE_TREE_H_
#define IMAGEPROOF_MERKLE_MERKLE_TREE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/digest.h"

namespace imageproof::merkle {

using crypto::Digest;

struct MerkleBuildOptions {
  // Thread cap for the level-parallel build; 0 means hardware concurrency.
  unsigned max_threads = 0;
  // Trees below this many leaves build serially (still batched 4-wide).
  // Keeps the per-cluster dimension trees — built inside an already-parallel
  // owner loop — from spawning nested workers.
  size_t parallel_grain = 2048;
};

// Commits a sequence of leaf payloads. Leaves are hashed with a 0x00 prefix
// and internal nodes with a 0x01 prefix (second-preimage domain separation).
// For n > 1 leaves the split point is the largest power of two < n.
class MerkleTree {
 public:
  explicit MerkleTree(const std::vector<Bytes>& leaf_payloads,
                      const MerkleBuildOptions& options = {});

  size_t leaf_count() const { return leaf_count_; }
  const Digest& root() const { return root_; }

  static Digest HashLeaf(const Bytes& payload);

  // Replaces the payload of one leaf and recomputes only the digests on its
  // leaf-to-root path — O(log n) hashes versus an O(n) rebuild. The
  // resulting tree is byte-identical to reconstructing from scratch with the
  // modified payload (locked in by the randomized property test).
  void UpdateLeaf(size_t index, const Bytes& new_payload);

  // Proof that the leaves at `indices` (sorted, unique, in range) have the
  // claimed payloads: the digests of the maximal subtrees containing no
  // revealed leaf, in traversal order.
  std::vector<Digest> ProveSubset(const std::vector<uint32_t>& indices) const;

  // Recomputes the root from revealed payloads + proof digests. `indices`
  // must be sorted and unique; `payloads` aligns with `indices`.
  static Status VerifySubset(size_t leaf_count, const Digest& root,
                             const std::vector<uint32_t>& indices,
                             const std::vector<Bytes>& payloads,
                             const std::vector<Digest>& proof);

 private:
  // Digest of the subtree covering leaves [begin, end): an O(1) lookup into
  // the stored levels (begin is always 2^k-aligned for recursion subtrees).
  const Digest& NodeDigest(size_t begin, size_t end) const;
  void ProveRange(size_t begin, size_t end, const std::vector<uint32_t>& indices,
                  size_t idx_begin, size_t idx_end,
                  std::vector<Digest>* out) const;

  size_t leaf_count_ = 0;
  // levels_[0] = leaf digests; levels_[k+1] pairs up levels_[k] (odd
  // trailing node carried up unchanged); levels_.back() is {root}. Storing
  // every level costs < 2n digests and buys O(1) interior lookups for
  // proofs plus the O(log n) incremental update path.
  std::vector<std::vector<Digest>> levels_;
  Digest root_;
};

// Recomputes the root implied by a subset proof without comparing it to a
// known value (the caller embeds the result in a larger digest). Same input
// contract as MerkleTree::VerifySubset.
Status ReconstructSubsetRoot(size_t leaf_count,
                             const std::vector<uint32_t>& indices,
                             const std::vector<Bytes>& payloads,
                             const std::vector<Digest>& proof, Digest* root_out);

}  // namespace imageproof::merkle

#endif  // IMAGEPROOF_MERKLE_MERKLE_TREE_H_
