// Wall-clock stopwatch used by the benchmark harnesses to report the
// SP-CPU-time / client-CPU-time columns of the paper's figures.

#ifndef IMAGEPROOF_COMMON_STOPWATCH_H_
#define IMAGEPROOF_COMMON_STOPWATCH_H_

#include <chrono>

namespace imageproof {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace imageproof

#endif  // IMAGEPROOF_COMMON_STOPWATCH_H_
