// Portable canonical-order kernels and the runtime dispatch point.
//
// This TU is compiled with -ffp-contract=off and WITHOUT -mavx2/-mfma: the
// per-lane mul+add sequences below must execute as written (no FMA
// contraction) or the bit-exactness contract with kernels_avx2.cc breaks.
// The loops are written lane-parallel on purpose — an auto-vectorizer may
// turn them into SIMD, which is fine: lanes are independent accumulators,
// so vectorization cannot reassociate within a lane.

#include "common/kernels.h"

#include <cstdlib>

namespace imageproof::kern {

namespace {

// --- portable canonical implementations ------------------------------------

double SquaredL2Portable(const float* a, const float* b, size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      double diff =
          static_cast<double>(a[i + j]) - static_cast<double>(b[i + j]);
      lanes[j] += diff * diff;
    }
  }
  for (; i < n; ++i) {
    double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    lanes[i & 7] += diff * diff;
  }
  return internal::ReduceLanes(lanes);
}

double SquaredL2PrunedPortable(const float* a, const float* b, size_t n,
                               double bound) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      double diff =
          static_cast<double>(a[i + j]) - static_cast<double>(b[i + j]);
      lanes[j] += diff * diff;
    }
    if ((i + 8) % internal::kPruneCheckDims == 0) {
      double partial = internal::ReduceLanes(lanes);
      if (partial >= bound) return partial;
    }
  }
  for (; i < n; ++i) {
    double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    lanes[i & 7] += diff * diff;
  }
  return internal::ReduceLanes(lanes);
}

void SquaredL2BatchPortable(const float* q, const float* rows,
                            size_t row_stride, size_t n_rows, size_t dims,
                            double* out) {
  for (size_t r = 0; r < n_rows; ++r) {
    out[r] = SquaredL2Portable(q, rows + r * row_stride, dims);
  }
}

double DotPortable(const float* a, const float* b, size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      lanes[j] +=
          static_cast<double>(a[i + j]) * static_cast<double>(b[i + j]);
    }
  }
  for (; i < n; ++i) {
    lanes[i & 7] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return internal::ReduceLanes(lanes);
}

double SquaredNormPortable(const float* a, size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      double v = static_cast<double>(a[i + j]);
      lanes[j] += v * v;
    }
  }
  for (; i < n; ++i) {
    double v = static_cast<double>(a[i]);
    lanes[i & 7] += v * v;
  }
  return internal::ReduceLanes(lanes);
}

// --- dispatch ---------------------------------------------------------------

const internal::KernelImpls& ActiveImpls() {
  static const internal::KernelImpls& impls = [&]() -> const auto& {
    if (std::getenv("IMAGEPROOF_NO_AVX2") == nullptr) {
      if (const internal::KernelImpls* avx2 = internal::Avx2()) return *avx2;
    }
    return internal::Portable();
  }();
  return impls;
}

}  // namespace

namespace internal {

const KernelImpls& Portable() {
  static const KernelImpls impls = {
      &SquaredL2Portable, &SquaredL2PrunedPortable, &SquaredL2BatchPortable,
      &DotPortable,       &SquaredNormPortable,
  };
  return impls;
}

#ifdef IMAGEPROOF_KERNELS_AVX2
// Defined in kernels_avx2.cc.
const KernelImpls& Avx2Impls();
#endif

const KernelImpls* Avx2() {
#ifdef IMAGEPROOF_KERNELS_AVX2
  static const KernelImpls* impls =
      __builtin_cpu_supports("avx2") ? &Avx2Impls() : nullptr;
  return impls;
#else
  return nullptr;
#endif
}

double SquaredL2ScalarRef(const float* a, const float* b, size_t n) {
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    double diff = static_cast<double>(a[i]) - b[i];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace internal

double SquaredL2(const float* a, const float* b, size_t n) {
  return ActiveImpls().squared_l2(a, b, n);
}

double SquaredL2Pruned(const float* a, const float* b, size_t n,
                       double bound) {
  return ActiveImpls().squared_l2_pruned(a, b, n, bound);
}

void SquaredL2Batch(const float* q, const float* rows, size_t row_stride,
                    size_t n_rows, size_t dims, double* out) {
  ActiveImpls().squared_l2_batch(q, rows, row_stride, n_rows, dims, out);
}

double Dot(const float* a, const float* b, size_t n) {
  return ActiveImpls().dot(a, b, n);
}

double SquaredNorm(const float* a, size_t n) {
  return ActiveImpls().squared_norm(a, n);
}

bool Avx2Active() { return &ActiveImpls() != &internal::Portable(); }

bool Avx2Compiled() {
#ifdef IMAGEPROOF_KERNELS_AVX2
  return true;
#else
  return false;
#endif
}

}  // namespace imageproof::kern
