// Deterministic pseudo-random number generation.
//
// Every randomized component (tree splits, synthetic datasets, cuckoo
// eviction paths) takes an explicit seed so experiments are exactly
// reproducible across runs and across the SP/client boundary. The generator
// is xoshiro256**, which is fast, well distributed, and trivially portable.

#ifndef IMAGEPROOF_COMMON_RANDOM_H_
#define IMAGEPROOF_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace imageproof {

// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
// seeded through splitmix64 so that any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Debiased multiply-shift (Lemire). Good enough for simulation use.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Standard normal via Box-Muller (no caching; simple and stateless).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Approximately Zipf-distributed rank in [0, n) with exponent s, via the
  // inverse CDF of the continuous bounded power law. Exact Zipf weights are
  // unnecessary for workload synthesis; what matters is the heavy-tailed
  // shape of posting-list lengths and request popularity.
  uint64_t NextZipf(uint64_t n, double s) {
    double u = NextDouble();
    double y;
    if (std::abs(1.0 - s) < 1e-9) {
      // s -> 1 limit of the branch below (the general formula divides by
      // 1 - s and would degenerate to always-rank-0): CDF(y) = ln y / ln n,
      // so the inverse is n^u.
      y = std::pow(static_cast<double>(n), u);
    } else {
      double t = std::pow(static_cast<double>(n), 1.0 - s);
      y = std::pow((t - 1.0) * u + 1.0, 1.0 / (1.0 - s));
    }
    uint64_t k = static_cast<uint64_t>(y);
    if (k < 1) k = 1;
    if (k > n) k = n;
    return k - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace imageproof

#endif  // IMAGEPROOF_COMMON_RANDOM_H_
