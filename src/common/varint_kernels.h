// Group varint (StreamVByte-layout) coding for u32 sequences, joining the
// common/kernels.h AVX2/portable dispatch family.
//
// Wire layout for a block of n values: ceil(n/4) control bytes, then the
// data bytes. Each control byte holds four 2-bit fields (value i of the
// quad uses bits 2i..2i+1) giving the byte length - 1 of that value; data
// bytes follow in value order, little-endian, minimal length. The tail
// quad's unused fields are zero and contribute no data bytes. Splitting
// control from data is what makes the decode vectorizable: one control
// byte selects a 16-byte shuffle that expands a whole quad at once.
//
// The encoder is scalar and canonical — minimal lengths, one possible
// byte stream per value sequence — so VO bytes stay deterministic across
// machines. The decoder is runtime-dispatched (AVX2 shuffle-LUT fast path,
// portable scalar otherwise) and MUST produce identical values on every
// path; kernels_test cross-checks internal::DecodePortable against
// internal::DecodeAvx2 on random and adversarial inputs. The same
// IMAGEPROOF_NO_AVX2 build option / environment variable that governs the
// distance kernels disables the SIMD decode.
//
// The decoder treats its input as attacker-controlled: every data-byte run
// is bounds-checked against the reader before it is touched, and a
// truncated stream yields kCorrupted, never a wild read. Values are used
// in digest-bound reconstructions downstream (d-gap image ids, squared
// BoVW norms), so a tampered byte surfaces as a digest mismatch even
// though — like the LEB128 varints elsewhere in the VO — the coding layer
// itself does not need to detect it.

#ifndef IMAGEPROOF_COMMON_VARINT_KERNELS_H_
#define IMAGEPROOF_COMMON_VARINT_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace imageproof::kern {

// Appends the group-varint block for values[0..n) to `w`. n == 0 appends
// nothing. Canonical: minimal byte lengths, deterministic output.
void GroupVarintEncode(const uint32_t* values, size_t n, ByteWriter& w);

// Exact encoded size of values[0..n) in bytes, without encoding.
size_t GroupVarintEncodedBytes(const uint32_t* values, size_t n);

// Decodes the block for exactly n values from `r`, advancing it past the
// block. kCorrupted if the stream is truncated. n == 0 reads nothing.
Status GroupVarintDecode(ByteReader& r, size_t n, uint32_t* out);

// ZigZag mapping for signed deltas (ids that are not monotone on the
// wire): small magnitudes of either sign stay small on the wire.
inline uint32_t ZigZagEncode32(int64_t v) {
  return static_cast<uint32_t>((static_cast<uint64_t>(v) << 1) ^
                               static_cast<uint64_t>(v >> 63));
}
inline int64_t ZigZagDecode32(uint32_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// True when the group-varint decode dispatches to the AVX2 path.
bool GroupVarintAvx2Active();

namespace internal {

// Both decode implementations, exposed for bit-exactness tests (mirrors
// KernelImpls::Portable()/Avx2() in kernels.h).
Status GroupVarintDecodePortable(ByteReader& r, size_t n, uint32_t* out);
// Null when the SIMD TU is compiled out or the CPU lacks AVX2.
using GroupVarintDecodeFn = Status (*)(ByteReader&, size_t, uint32_t*);
GroupVarintDecodeFn GroupVarintDecodeAvx2();

}  // namespace internal

}  // namespace imageproof::kern

#endif  // IMAGEPROOF_COMMON_VARINT_KERNELS_H_
