// Canonical binary serialization used for every byte stream that is hashed,
// signed, or shipped inside a verification object (VO).
//
// Both the service provider and the client must derive bit-identical byte
// streams from logically identical values, so all encodings here are fixed:
//   * integers        little-endian fixed width, or LEB128 varints
//   * floating point  IEEE-754 bit pattern, little-endian (doubles/floats are
//                     never hashed via textual formatting)
//   * strings/blobs   varint length prefix + raw bytes
//
// ByteWriter appends; ByteReader consumes and reports malformed input through
// Status instead of crashing, because VOs arrive from an untrusted party.

#ifndef IMAGEPROOF_COMMON_BYTES_H_
#define IMAGEPROOF_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace imageproof {

using Bytes = std::vector<uint8_t>;

// Non-owning view of a byte range, for APIs that take many inputs at once
// (the batch digest API in crypto/hasher.h) without forcing a copy into a
// container. The viewed bytes must outlive the view.
struct BytesView {
  const uint8_t* data = nullptr;
  size_t size = 0;

  BytesView() = default;
  BytesView(const uint8_t* d, size_t n) : data(d), size(n) {}
  BytesView(const Bytes& b) : data(b.data()), size(b.size()) {}  // NOLINT
};

// Appends canonical encodings to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  // Unsigned LEB128; at most 10 bytes for a 64-bit value.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  // IEEE-754 bit pattern. This is the only sanctioned way to serialize a
  // float that participates in a digest.
  void PutF64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU32(bits);
  }

  void PutBytes(const uint8_t* data, size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  void PutBytes(const Bytes& b) { PutBytes(b.data(), b.size()); }

  // Length-prefixed blob.
  void PutBlob(const Bytes& b) {
    PutVarint(b.size());
    PutBytes(b);
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  size_t size() const { return buf_.size(); }
  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Consumes canonical encodings; every getter validates remaining length.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), end_(data + n) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - data_); }
  bool AtEnd() const { return data_ == end_; }

  // Raw cursor access for block decoders (common/varint_kernels.h) that
  // consume a validated run of bytes at SIMD width. Callers must pair
  // data() with Skip() and never read past remaining().
  const uint8_t* data() const { return data_; }
  Status Skip(size_t n) {
    if (remaining() < n) return Truncated("skip");
    data_ += n;
    return Status::Ok();
  }

  Status GetU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = *data_++;
    return Status::Ok();
  }

  Status GetU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[i]) << (8 * i);
    data_ += 4;
    *out = v;
    return Status::Ok();
  }

  Status GetU64(uint64_t* out) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[i]) << (8 * i);
    data_ += 8;
    *out = v;
    return Status::Ok();
  }

  Status GetVarint(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (AtEnd()) return Truncated("varint");
      if (shift >= 64) {
        return Status::Corrupted("bytes: varint overflows 64 bits");
      }
      uint8_t b = *data_++;
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    *out = v;
    return Status::Ok();
  }

  Status GetF64(double* out) {
    uint64_t bits = 0;
    Status s = GetU64(&bits);
    if (!s.ok()) return s;
    std::memcpy(out, &bits, sizeof(bits));
    return Status::Ok();
  }

  Status GetF32(float* out) {
    uint32_t bits = 0;
    Status s = GetU32(&bits);
    if (!s.ok()) return s;
    std::memcpy(out, &bits, sizeof(bits));
    return Status::Ok();
  }

  Status GetBytes(size_t n, Bytes* out) {
    if (remaining() < n) return Truncated("bytes");
    out->assign(data_, data_ + n);
    data_ += n;
    return Status::Ok();
  }

  Status GetBlob(Bytes* out) {
    uint64_t n = 0;
    Status s = GetVarint(&n);
    if (!s.ok()) return s;
    if (n > remaining()) return Truncated("blob");
    return GetBytes(static_cast<size_t>(n), out);
  }

  Status GetString(std::string* out) {
    uint64_t n = 0;
    Status s = GetVarint(&n);
    if (!s.ok()) return s;
    if (n > remaining()) return Truncated("string");
    out->assign(reinterpret_cast<const char*>(data_), static_cast<size_t>(n));
    data_ += n;
    return Status::Ok();
  }

 private:
  // Malformed untrusted input is kCorrupted: callers distinguish "the bytes
  // are bad" (reject/retry) from a generic failed check.
  static Status Truncated(const char* what) {
    return Status::Corrupted(std::string("bytes: truncated input reading ") +
                             what);
  }

  const uint8_t* data_;
  const uint8_t* end_;
};

}  // namespace imageproof

#endif  // IMAGEPROOF_COMMON_BYTES_H_
