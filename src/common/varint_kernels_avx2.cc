// AVX2/SSSE3 group-varint decode. Compiled only into this TU with -mavx2
// (see src/common/CMakeLists.txt) and reached through
// __builtin_cpu_supports("avx2"), mirroring kernels_avx2.cc.
//
// One pshufb per quad: the control byte indexes a 256-entry LUT whose
// 16-byte mask scatters the quad's packed data bytes into four u32 lanes
// (absent bytes map to 0x80 = zero lane byte). The fast path runs while a
// full 16-byte load at the data cursor stays inside the reader's buffer —
// over-reading past the *block* is fine (the bytes belong to the same VO
// buffer and the cursor only advances by the real quad length); the scalar
// tail handles the rest with per-byte bounds checks, so truncated input
// degrades to kCorrupted exactly like the portable path.

#include "common/varint_kernels.h"

#ifdef IMAGEPROOF_KERNELS_AVX2

#include <immintrin.h>

namespace imageproof::kern::internal {

namespace {

struct GvLut {
  alignas(16) uint8_t shuffle[256][16];
  uint8_t len[256];
};

const GvLut& Lut() {
  static const GvLut lut = [] {
    GvLut t{};
    for (int c = 0; c < 256; ++c) {
      int off = 0;
      for (int i = 0; i < 4; ++i) {
        int l = ((c >> (2 * i)) & 3) + 1;
        for (int b = 0; b < 4; ++b) {
          t.shuffle[c][4 * i + b] =
              b < l ? static_cast<uint8_t>(off + b) : 0x80;
        }
        off += l;
      }
      t.len[c] = static_cast<uint8_t>(off);
    }
    return t;
  }();
  return lut;
}

Status DecodeAvx2(ByteReader& r, size_t n, uint32_t* out) {
  if (n == 0) return Status::Ok();
  size_t num_ctrl = (n + 3) / 4;
  if (r.remaining() < num_ctrl) {
    return Status::Corrupted("gv: truncated control bytes");
  }
  const uint8_t* ctrl = r.data();
  const uint8_t* data = ctrl + num_ctrl;
  size_t data_avail = r.remaining() - num_ctrl;
  const GvLut& lut = Lut();

  size_t i = 0;
  size_t used = 0;
  while (i + 4 <= n && used + 16 <= data_avail) {
    uint8_t c = ctrl[i >> 2];
    __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + used));
    __m128i mask =
        _mm_load_si128(reinterpret_cast<const __m128i*>(lut.shuffle[c]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_shuffle_epi8(raw, mask));
    used += lut.len[c];
    i += 4;
  }
  for (; i < n; ++i) {
    uint32_t len = ((ctrl[i >> 2] >> (2 * (i & 3))) & 3u) + 1u;
    if (data_avail - used < len) {
      return Status::Corrupted("gv: truncated data bytes");
    }
    uint32_t v = 0;
    for (uint32_t b = 0; b < len; ++b) {
      v |= static_cast<uint32_t>(data[used + b]) << (8 * b);
    }
    out[i] = v;
    used += len;
  }
  return r.Skip(num_ctrl + used);
}

}  // namespace

GroupVarintDecodeFn GroupVarintDecodeAvx2() {
  static const GroupVarintDecodeFn fn =
      __builtin_cpu_supports("avx2") ? &DecodeAvx2 : nullptr;
  return fn;
}

}  // namespace imageproof::kern::internal

#endif  // IMAGEPROOF_KERNELS_AVX2
