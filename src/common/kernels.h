// Vectorized retrieval kernels: the plain-FLOP core of the query path.
//
// Every distance the retrieval structures evaluate — AKM nearest-cluster
// assignment (Alg. 1-2), randomized k-d forest leaf scans, MRKD-tree range
// search, BoVW impact scoring — funnels through the squared-L2 / dot / norm
// kernels declared here. Two implementations exist behind one dispatch
// point: an AVX2 translation unit (kernels_avx2.cc, compiled with -mavx2)
// and a portable fallback (kernels.cc). The AVX2 path is selected at
// runtime via __builtin_cpu_supports("avx2") and can be disabled with the
// IMAGEPROOF_NO_AVX2 environment variable or compiled out entirely with
// -DIMAGEPROOF_NO_AVX2=ON, mirroring crypto/sha3_avx2.cc.
//
// Canonical reduction order
// -------------------------
// Query output must be byte-identical regardless of which path runs, so
// both implementations commit to one fixed summation tree over 8
// conceptual double-precision lanes:
//
//   lane[j] accumulates the terms of dimensions i with i % 8 == j,
//   in increasing i order (the tail past the last full group of 8
//   continues the same i % 8 mapping);
//
//   result = ((l0 + l4) + (l2 + l6)) + ((l1 + l5) + (l3 + l7))
//
// which is exactly the cheapest AVX2 ending: add the low-half and
// high-half 4-lane accumulators, fold the 256-bit vector to 128 bits, add
// the two remaining elements. Each float is widened to double before any
// arithmetic, and both translation units are built with -ffp-contract=off
// (and without -mfma) so no mul+add pair is ever contracted into an FMA.
// The portable loop reproduces the identical operation sequence per lane,
// making the two paths bit-exact by construction (locked in by
// tests/kernels_test.cc over randomized dims, tails, and denormals).
//
// The pruned kernel checks the partial sum against a caller bound every 32
// dimensions with the same cadence on both paths; when it prunes it
// returns a partial sum that is >= the bound. Callers must therefore treat
// the return value only as "the distance, or any value >= bound" — leaf
// scans that update a strictly-smaller best-so-far do exactly that.

#ifndef IMAGEPROOF_COMMON_KERNELS_H_
#define IMAGEPROOF_COMMON_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace imageproof::kern {

// ---------------------------------------------------------------------------
// Distance / scoring kernels (runtime-dispatched).

// sum_i (a[i] - b[i])^2 in the canonical reduction order.
double SquaredL2(const float* a, const float* b, size_t n);

// Squared L2 with partial-distance early termination: once the partial sum
// reaches `bound` (checked every 32 dims), gives up and returns the partial
// sum, which is >= bound. If it never reaches the bound the exact canonical
// distance is returned. Bit-identical across dispatch paths.
double SquaredL2Pruned(const float* a, const float* b, size_t n, double bound);

// Distances from one query to `n_rows` rows of a row-major matrix
// (`rows + r * row_stride` is row r). out[r] is bitwise equal to
// SquaredL2(q, rows + r * row_stride, dims).
void SquaredL2Batch(const float* q, const float* rows, size_t row_stride,
                    size_t n_rows, size_t dims, double* out);

// sum_i a[i] * b[i] in the canonical reduction order.
double Dot(const float* a, const float* b, size_t n);

// sum_i a[i]^2 in the canonical reduction order.
double SquaredNorm(const float* a, size_t n);

// True when the AVX2 path was compiled in AND the CPU supports it AND the
// IMAGEPROOF_NO_AVX2 environment variable is not set.
bool Avx2Active();
// True when kernels_avx2.cc was compiled into this binary.
bool Avx2Compiled();

// ---------------------------------------------------------------------------
// Direct access to both implementations, for the bit-exactness property
// tests and the speedup ablation bench. Null members mean "not available in
// this build / on this CPU".
namespace internal {

struct KernelImpls {
  double (*squared_l2)(const float*, const float*, size_t) = nullptr;
  double (*squared_l2_pruned)(const float*, const float*, size_t,
                              double) = nullptr;
  void (*squared_l2_batch)(const float*, const float*, size_t, size_t, size_t,
                           double*) = nullptr;
  double (*dot)(const float*, const float*, size_t) = nullptr;
  double (*squared_norm)(const float*, size_t) = nullptr;
};

// The portable canonical implementation (always available).
const KernelImpls& Portable();

// The AVX2 implementation, or nullptr when it is compiled out or the CPU
// lacks AVX2. Ignores the IMAGEPROOF_NO_AVX2 environment override so tests
// can compare both paths in one process.
const KernelImpls* Avx2();

// Naive sequential-order scalar loop — the pre-kernel baseline the
// abl_kernels speedup is measured against. NOT bit-compatible with the
// canonical order; never used by retrieval code.
double SquaredL2ScalarRef(const float* a, const float* b, size_t n);

// Canonical final reduction over the 8 lane accumulators (shared by both
// implementations and by tests that build expected values by hand).
inline double ReduceLanes(const double l[8]) {
  return ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
}

// Dimensions between bound checks in SquaredL2Pruned. Part of the kernel's
// observable semantics (it decides where pruning can trigger), so both
// implementations and the tests share this constant.
inline constexpr size_t kPruneCheckDims = 32;

}  // namespace internal

// ---------------------------------------------------------------------------
// 32-byte-aligned storage for point data (AVX2-friendly row bases).

template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two >= alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

inline constexpr size_t kPointAlignment = 32;

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kPointAlignment>>;

// ---------------------------------------------------------------------------
// ScoreAccumulator: flat open-addressing u64 -> double map for posting-list
// score accumulation. Unlike std::unordered_map, Clear() keeps all storage
// (epoch-stamped slots), so a warm accumulator does zero heap allocation.
// Entries are also kept in a dense first-touch-order array, giving
// deterministic iteration independent of hashing.

class ScoreAccumulator {
 public:
  // Drops all entries but keeps capacity. O(1) except once every 2^32
  // clears, when the stamp array is rewritten.
  void Clear() {
    dense_n_ = 0;
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  // Grows the table so `n` entries fit without rehashing mid-accumulation.
  void Reserve(size_t n) {
    size_t want = 16;
    while (want < 2 * n + 1) want <<= 1;
    if (want > table_keys_.size()) Rehash(want);
    if (dense_keys_.size() < n) {
      dense_keys_.resize(n);
      dense_vals_.resize(n);
    }
  }

  void Add(uint64_t key, double delta) {
    if ((dense_n_ + 1) * 2 > table_keys_.size()) {
      Rehash(table_keys_.empty() ? 16 : table_keys_.size() * 2);
    }
    const size_t mask = table_keys_.size() - 1;
    size_t slot = Mix(key) & mask;
    while (stamps_[slot] == epoch_) {
      if (table_keys_[slot] == key) {
        dense_vals_[table_idx_[slot]] += delta;
        return;
      }
      slot = (slot + 1) & mask;
    }
    stamps_[slot] = epoch_;
    table_keys_[slot] = key;
    table_idx_[slot] = static_cast<uint32_t>(dense_n_);
    if (dense_n_ == dense_keys_.size()) {
      dense_keys_.push_back(key);
      dense_vals_.push_back(delta);
    } else {
      dense_keys_[dense_n_] = key;
      dense_vals_[dense_n_] = delta;
    }
    ++dense_n_;
  }

  size_t size() const { return dense_n_; }
  uint64_t key(size_t i) const { return dense_keys_[i]; }
  double value(size_t i) const { return dense_vals_[i]; }

 private:
  static uint64_t Mix(uint64_t x) {
    // splitmix64 finalizer.
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  void Rehash(size_t new_size) {
    table_keys_.assign(new_size, 0);
    table_idx_.assign(new_size, 0);
    stamps_.assign(new_size, 0);
    epoch_ = 1;
    const size_t mask = new_size - 1;
    for (size_t i = 0; i < dense_n_; ++i) {
      size_t slot = Mix(dense_keys_[i]) & mask;
      while (stamps_[slot] == epoch_) slot = (slot + 1) & mask;
      stamps_[slot] = epoch_;
      table_keys_[slot] = dense_keys_[i];
      table_idx_[slot] = static_cast<uint32_t>(i);
    }
  }

  std::vector<uint64_t> table_keys_;
  std::vector<uint32_t> table_idx_;
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
  std::vector<uint64_t> dense_keys_;  // first-touch order
  std::vector<double> dense_vals_;
  size_t dense_n_ = 0;
};

// ---------------------------------------------------------------------------
// Bounded top-k selection over (score desc, id asc). A size-k heap whose
// root is the *worst* kept entry; strictly-better candidates evict it.
// Operates on a caller-owned vector so a warm scratch allocates nothing.

struct ScoredEntry {
  double score;
  uint64_t id;
};

// True when a ranks strictly worse than b under (score desc, id asc).
inline bool ScoredWorse(const ScoredEntry& a, const ScoredEntry& b) {
  return a.score != b.score ? a.score < b.score : a.id > b.id;
}

inline void TopKPush(std::vector<ScoredEntry>& heap, size_t k,
                     ScoredEntry entry) {
  if (k == 0) return;
  // Heap property: the worst entry is at heap[0] ("min"-heap under the
  // better-than order), so comparator = "a better than b".
  auto better = [](const ScoredEntry& a, const ScoredEntry& b) {
    return ScoredWorse(b, a);
  };
  if (heap.size() < k) {
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end(), better);
    return;
  }
  if (ScoredWorse(entry, heap.front()) ||
      (entry.score == heap.front().score && entry.id == heap.front().id)) {
    return;
  }
  std::pop_heap(heap.begin(), heap.end(), better);
  heap.back() = entry;
  std::push_heap(heap.begin(), heap.end(), better);
}

// Sorts the kept entries best-first (score desc, id asc). In-place.
inline void TopKFinish(std::vector<ScoredEntry>& heap) {
  std::sort(heap.begin(), heap.end(),
            [](const ScoredEntry& a, const ScoredEntry& b) {
              return ScoredWorse(b, a);
            });
}

// ---------------------------------------------------------------------------
// Reusable per-query search scratch. One instance per worker lane; holding
// one across queries makes the steady-state search stages allocation-free
// (buffers only grow, never shrink). Not thread-safe: one lane, one owner.

struct BestBinBranch {
  double min_dist;
  int32_t tree;
  int32_t node;
};

inline bool BranchGreater(const BestBinBranch& a, const BestBinBranch& b) {
  return a.min_dist > b.min_dist;
}

struct SearchScratch {
  // Best-bin-first priority queue (min-heap on min_dist via std::push_heap
  // with BranchGreater), shared by all trees of a forest search.
  std::vector<BestBinBranch> branch_heap;
  // Batched distance outputs.
  std::vector<double> dists;
  // Candidate ids collected during posting-list walks.
  std::vector<uint64_t> candidates;
  // Bounded top-k heap of (score, id).
  std::vector<ScoredEntry> score_heap;
  // Posting-list score accumulation.
  ScoreAccumulator scores;

  void Reserve(size_t branches, size_t batch, size_t images) {
    branch_heap.reserve(branches);
    dists.reserve(batch);
    candidates.reserve(images);
    score_heap.reserve(images);
    scores.Reserve(images);
  }
};

}  // namespace imageproof::kern

#endif  // IMAGEPROOF_COMMON_KERNELS_H_
