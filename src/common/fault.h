// Deterministic fault injection for robustness tests.
//
// A FaultInjector is a process-global registry of *sites* — string keys
// compiled into production code paths at the exact points where hardware or
// an adversary could bite: serializer output (bit flips, truncation), the
// engine's clone/sign pipeline, artificial latency in queries and updates.
// Tests arm sites (probabilistically, on scripted hit indices, or always)
// and production code asks `Fire(site)` at each pass; a disarmed injector
// costs one relaxed atomic load per site, so the hooks stay compiled in for
// every build — the same binaries that serve traffic are the ones proven to
// degrade cleanly.
//
// Determinism: probabilistic sites draw from a per-site xoshiro stream
// seeded at arm time, and hit counting is under one mutex, so a
// single-threaded test replays identically run after run. (Multi-threaded
// tests interleave hits nondeterministically by nature; they assert
// invariants, not exact schedules.)
//
// Site keys currently wired in:
//   storage.serialize.bitflip    flip one bit of a serialized package
//   storage.serialize.truncate   drop the tail of a serialized package
//   storage.file.short_write     tear an atomic file write partway through
//   storage.file.fsync_fail      fail the pre-rename data fsync
//   storage.file.rename_fail     drop the atomic-rename publish step
//   storage.scrub.bitflip        corrupt a digest the epoch scrubber computes
//   engine.update.clone          fail the snapshot clone outright
//   engine.update.sign           corrupt the freshly signed root signature
//   engine.update.latency        sleep inside the update critical section
//   engine.query.latency         sleep inside Serve() (overload tests)
//   net.conn.reset               server drops a connection at a frame boundary
//
// Arming validates the site name against this wired set (plus any sites a
// test explicitly RegisterSite()s): a typo in a chaos config would
// otherwise arm a site nothing ever fires, silently disabling the fault it
// was meant to inject. Unknown names abort with the known list.

#ifndef IMAGEPROOF_COMMON_FAULT_H_
#define IMAGEPROOF_COMMON_FAULT_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"

namespace imageproof::fault {

// Every site compiled into production code paths. Keep in lockstep with the
// call sites; ArmX() on a name outside this list (and outside the
// test-registered extras) aborts the process.
inline constexpr const char* kWiredSites[] = {
    "storage.serialize.bitflip", "storage.serialize.truncate",
    "storage.file.short_write",  "storage.file.fsync_fail",
    "storage.file.rename_fail",  "storage.scrub.bitflip",
    "engine.update.clone",       "engine.update.sign",
    "engine.update.latency",     "engine.query.latency",
    "net.conn.reset",
};

class FaultInjector {
 public:
  static FaultInjector& Global() {
    static FaultInjector injector;
    return injector;
  }

  // Clears every armed site and every hit counter. Tests call this in
  // SetUp/TearDown so sites never leak across test cases.
  void DisarmAll() {
    std::lock_guard<std::mutex> lock(mu_);
    sites_.clear();
    enabled_.store(false, std::memory_order_relaxed);
  }

  // Admits a site name outside kWiredSites for the lifetime of the process
  // (survives DisarmAll — registration is vocabulary, not armed state).
  // Unit tests use this for synthetic sites; production code never should.
  void RegisterSite(const std::string& site) {
    std::lock_guard<std::mutex> lock(mu_);
    extra_sites_.insert(site);
  }

  // Fires with probability `p` on each hit, drawn from a deterministic
  // per-site stream seeded with `seed`.
  void ArmProbability(const std::string& site, double p, uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu_);
    MustBeKnown(site);
    SiteState& s = sites_[site];
    s.mode = Mode::kProbability;
    s.probability = p;
    s.rng_state = seed;
    enabled_.store(true, std::memory_order_relaxed);
  }

  // Fires exactly on the given 0-based hit indices (scripted faults:
  // "fail the second clone, then recover").
  void ArmHits(const std::string& site, std::vector<uint64_t> hit_indices) {
    std::lock_guard<std::mutex> lock(mu_);
    MustBeKnown(site);
    SiteState& s = sites_[site];
    s.mode = Mode::kScripted;
    s.scripted_hits = std::move(hit_indices);
    enabled_.store(true, std::memory_order_relaxed);
  }

  // Fires on every hit.
  void ArmAlways(const std::string& site) {
    std::lock_guard<std::mutex> lock(mu_);
    MustBeKnown(site);
    sites_[site].mode = Mode::kAlways;
    enabled_.store(true, std::memory_order_relaxed);
  }

  // Arms a latency site: InjectLatency(site) sleeps this long per firing.
  void ArmLatencyMs(const std::string& site, uint32_t ms) {
    std::lock_guard<std::mutex> lock(mu_);
    MustBeKnown(site);
    SiteState& s = sites_[site];
    s.mode = Mode::kAlways;
    s.latency_ms = ms;
    enabled_.store(true, std::memory_order_relaxed);
  }

  // Counts a hit at `site` and reports whether the armed fault fires.
  // Disarmed sites (and a fully disarmed injector) never fire.
  bool Fire(const char* site) {
    if (!enabled()) return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    SiteState& s = it->second;
    uint64_t hit = s.hits++;
    bool fired = false;
    switch (s.mode) {
      case Mode::kOff:
        break;
      case Mode::kAlways:
        fired = true;
        break;
      case Mode::kProbability:
        fired = NextDouble(s) < s.probability;
        break;
      case Mode::kScripted:
        for (uint64_t h : s.scripted_hits) fired = fired || (h == hit);
        break;
    }
    if (fired) ++s.fired;
    return fired;
  }

  // Deterministic per-site draw for corruption offsets (which bit to flip,
  // how much tail to drop). Counts as neither a hit nor a firing.
  uint64_t Draw(const char* site) {
    std::lock_guard<std::mutex> lock(mu_);
    return NextU64(sites_[site]);
  }

  uint32_t LatencyMs(const char* site) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.latency_ms;
  }

  uint64_t Hits(const std::string& site) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
  }

  uint64_t Fired(const std::string& site) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
  }

  // Fast-path gate: a single relaxed load when nothing is armed, so the
  // hooks are effectively free in production.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  enum class Mode : uint8_t { kOff, kAlways, kProbability, kScripted };

  // Called under mu_ by every Arm variant. Aborting (rather than returning
  // a Status) is deliberate: arming happens in test/chaos setup, and a
  // config that arms a nonexistent site is a broken experiment — running on
  // with the fault silently disabled is the failure mode this guards.
  void MustBeKnown(const std::string& site) const {
    for (const char* wired : kWiredSites) {
      if (site == wired) return;
    }
    if (extra_sites_.count(site) != 0) return;
    std::fprintf(stderr, "fault: unknown site '%s'; wired sites are:\n",
                 site.c_str());
    for (const char* wired : kWiredSites) {
      std::fprintf(stderr, "  %s\n", wired);
    }
    std::fprintf(stderr,
                 "(tests may admit extra sites with RegisterSite())\n");
    std::abort();
  }

  struct SiteState {
    Mode mode = Mode::kOff;
    double probability = 0;
    std::vector<uint64_t> scripted_hits;
    uint32_t latency_ms = 0;
    uint64_t rng_state = 0x9E3779B97F4A7C15ULL;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  // splitmix64 step over the per-site state: deterministic, no global RNG
  // coupling between sites.
  static uint64_t NextU64(SiteState& s) {
    s.rng_state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = s.rng_state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static double NextDouble(SiteState& s) {
    return static_cast<double>(NextU64(s) >> 11) * 0x1.0p-53;
  }

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  std::set<std::string> extra_sites_;
  std::atomic<bool> enabled_{false};
};

// --- call-site helpers -----------------------------------------------------

// True when the armed fault at `site` fires this hit.
inline bool InjectFault(const char* site) {
  return FaultInjector::Global().Fire(site);
}

// Sleeps for the site's armed latency when it fires; no-op otherwise.
inline void InjectLatency(const char* site) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.enabled() || !fi.Fire(site)) return;
  uint32_t ms = fi.LatencyMs(site);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Applies the armed serializer faults to an outgoing byte buffer: a single
// deterministic bit flip and/or a tail truncation. The storage serializer
// calls this on every package it emits, so the engine's clone path (and any
// test that round-trips a package) sees realistic storage corruption.
inline void InjectByteFaults(Bytes* data) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.enabled() || data->empty()) return;
  if (fi.Fire("storage.serialize.bitflip")) {
    uint64_t r = fi.Draw("storage.serialize.bitflip");
    (*data)[(r >> 3) % data->size()] ^= static_cast<uint8_t>(1u << (r & 7));
  }
  if (fi.Fire("storage.serialize.truncate")) {
    uint64_t drop = 1 + fi.Draw("storage.serialize.truncate") %
                            std::min<size_t>(64, data->size());
    data->resize(data->size() - static_cast<size_t>(drop));
  }
}

}  // namespace imageproof::fault

#endif  // IMAGEPROOF_COMMON_FAULT_H_
