// AVX2 implementations of the retrieval kernels. Compiled with -mavx2 (and
// -ffp-contract=off, no -mfma) in its own TU; reached only through the
// runtime dispatch in kernels.cc.
//
// The lane layout realizes the canonical reduction order documented in
// kernels.h: each group of 8 floats is widened to two 4-double halves, so
// vector accumulator element k of the low half is canonical lane k
// (dims i % 8 == k) and element k of the high half is lane k+4. Every
// square/product is an explicit _mm256_mul_pd followed by _mm256_add_pd —
// never an FMA — so each lane performs the identical IEEE double operation
// sequence as the portable loop in kernels.cc.

#include <immintrin.h>

#include "common/kernels.h"

namespace imageproof::kern::internal {

namespace {

struct Acc {
  __m256d lo = _mm256_setzero_pd();  // canonical lanes 0..3
  __m256d hi = _mm256_setzero_pd();  // canonical lanes 4..7
};

inline void AccumulateDiff8(Acc& acc, const float* a, const float* b,
                            size_t i) {
  __m256 av = _mm256_loadu_ps(a + i);
  __m256 bv = _mm256_loadu_ps(b + i);
  __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(av));
  __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(av, 1));
  __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bv));
  __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1));
  __m256d dlo = _mm256_sub_pd(alo, blo);
  __m256d dhi = _mm256_sub_pd(ahi, bhi);
  acc.lo = _mm256_add_pd(acc.lo, _mm256_mul_pd(dlo, dlo));
  acc.hi = _mm256_add_pd(acc.hi, _mm256_mul_pd(dhi, dhi));
}

// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) — bitwise identical to
// internal::ReduceLanes on the stored lane values (IEEE adds either way).
inline double Reduce(const Acc& acc) {
  __m256d v = _mm256_add_pd(acc.lo, acc.hi);
  __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

// Finishes a kernel whose tail dims [i, n) remain: spills the lanes and
// continues the canonical i % 8 mapping in scalar code.
template <typename Term>
double FinishTail(const Acc& acc, size_t i, size_t n, Term term) {
  double lanes[8];
  _mm256_storeu_pd(lanes, acc.lo);
  _mm256_storeu_pd(lanes + 4, acc.hi);
  for (; i < n; ++i) lanes[i & 7] += term(i);
  return ReduceLanes(lanes);
}

double SquaredL2Avx2(const float* a, const float* b, size_t n) {
  Acc acc;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) AccumulateDiff8(acc, a, b, i);
  if (i == n) return Reduce(acc);
  return FinishTail(acc, i, n, [&](size_t d) {
    double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
    return diff * diff;
  });
}

double SquaredL2PrunedAvx2(const float* a, const float* b, size_t n,
                           double bound) {
  Acc acc;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    AccumulateDiff8(acc, a, b, i);
    if ((i + 8) % kPruneCheckDims == 0) {
      double partial = Reduce(acc);
      if (partial >= bound) return partial;
    }
  }
  if (i == n) return Reduce(acc);
  return FinishTail(acc, i, n, [&](size_t d) {
    double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
    return diff * diff;
  });
}

// Batch kernel: four rows advance in lockstep so their accumulator add
// chains overlap (the single-row kernel is latency-bound on the two
// _mm256_add_pd dependency chains). Each row still accumulates its own
// lanes in canonical per-row order — the interleave reorders nothing
// within a row, so every out[r] is bitwise identical to the single-row
// kernel. The widened query halves are loaded once per 8-dim group and
// shared across the four rows.
void SquaredL2BatchAvx2(const float* q, const float* rows, size_t row_stride,
                        size_t n_rows, size_t dims, double* out) {
  size_t r = 0;
  for (; r + 4 <= n_rows; r += 4) {
    const float* b0 = rows + (r + 0) * row_stride;
    const float* b1 = rows + (r + 1) * row_stride;
    const float* b2 = rows + (r + 2) * row_stride;
    const float* b3 = rows + (r + 3) * row_stride;
    Acc a0, a1, a2, a3;
    size_t i = 0;
    for (; i + 8 <= dims; i += 8) {
      __m256 qv = _mm256_loadu_ps(q + i);
      __m256d qlo = _mm256_cvtps_pd(_mm256_castps256_ps128(qv));
      __m256d qhi = _mm256_cvtps_pd(_mm256_extractf128_ps(qv, 1));
      auto step = [&](Acc& acc, const float* b) {
        __m256 bv = _mm256_loadu_ps(b + i);
        __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bv));
        __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1));
        __m256d dlo = _mm256_sub_pd(qlo, blo);
        __m256d dhi = _mm256_sub_pd(qhi, bhi);
        acc.lo = _mm256_add_pd(acc.lo, _mm256_mul_pd(dlo, dlo));
        acc.hi = _mm256_add_pd(acc.hi, _mm256_mul_pd(dhi, dhi));
      };
      step(a0, b0);
      step(a1, b1);
      step(a2, b2);
      step(a3, b3);
    }
    if (i == dims) {
      out[r + 0] = Reduce(a0);
      out[r + 1] = Reduce(a1);
      out[r + 2] = Reduce(a2);
      out[r + 3] = Reduce(a3);
    } else {
      auto tail = [&](const Acc& acc, const float* b) {
        return FinishTail(acc, i, dims, [&](size_t d) {
          double diff = static_cast<double>(q[d]) - static_cast<double>(b[d]);
          return diff * diff;
        });
      };
      out[r + 0] = tail(a0, b0);
      out[r + 1] = tail(a1, b1);
      out[r + 2] = tail(a2, b2);
      out[r + 3] = tail(a3, b3);
    }
  }
  for (; r < n_rows; ++r) {
    out[r] = SquaredL2Avx2(q, rows + r * row_stride, dims);
  }
}

inline void AccumulateProd8(Acc& acc, const float* a, const float* b,
                            size_t i) {
  __m256 av = _mm256_loadu_ps(a + i);
  __m256 bv = _mm256_loadu_ps(b + i);
  __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(av));
  __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(av, 1));
  __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bv));
  __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1));
  acc.lo = _mm256_add_pd(acc.lo, _mm256_mul_pd(alo, blo));
  acc.hi = _mm256_add_pd(acc.hi, _mm256_mul_pd(ahi, bhi));
}

double DotAvx2(const float* a, const float* b, size_t n) {
  Acc acc;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) AccumulateProd8(acc, a, b, i);
  if (i == n) return Reduce(acc);
  return FinishTail(acc, i, n, [&](size_t d) {
    return static_cast<double>(a[d]) * static_cast<double>(b[d]);
  });
}

double SquaredNormAvx2(const float* a, size_t n) {
  Acc acc;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) AccumulateProd8(acc, a, a, i);
  if (i == n) return Reduce(acc);
  return FinishTail(acc, i, n, [&](size_t d) {
    double v = static_cast<double>(a[d]);
    return v * v;
  });
}

}  // namespace

const KernelImpls& Avx2Impls() {
  static const KernelImpls impls = {
      &SquaredL2Avx2, &SquaredL2PrunedAvx2, &SquaredL2BatchAvx2,
      &DotAvx2,       &SquaredNormAvx2,
  };
  return impls;
}

}  // namespace imageproof::kern::internal
