// Fixed-size worker pool with a bounded submission queue — the execution
// substrate of the concurrent query-serving engine (core/query_engine.h)
// and reusable by any component that wants queued task parallelism rather
// than the fork-join style of common/parallel.h.
//
// Semantics:
//   * `num_threads` workers are spawned eagerly and live until destruction.
//   * Submit() enqueues a task and returns a std::future for its result.
//     When a `queue_capacity` was given and the queue is full, Submit()
//     BLOCKS until a worker drains an entry — natural backpressure, so an
//     overloaded server sheds load onto its callers instead of growing an
//     unbounded backlog.
//   * TrySubmit() is the load-shedding variant: it never blocks, and
//     instead reports kQueueFull (caller sheds) or kShutdown (pool is
//     draining) — the query engine builds its overload policy on this.
//   * Shutdown() drains every already-submitted task, joins the workers,
//     and is idempotent/thread-safe; the destructor calls it. After
//     Shutdown, Submit() runs the task inline on the calling thread (the
//     returned future is always satisfied, never silently dropped) and
//     TrySubmit() reports kShutdown.
//
// Thread safety: all public members may be called from any thread. Tasks
// may not Submit() to the pool they run on while the queue is full (the
// classic self-deadlock); the query engine therefore keeps intra-query
// parallelism on ParallelFor's fork-join threads, never on its own pool.

#ifndef IMAGEPROOF_COMMON_THREAD_POOL_H_
#define IMAGEPROOF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace imageproof {

class ThreadPool {
 public:
  // `queue_capacity` of 0 means unbounded (Submit never blocks).
  explicit ThreadPool(unsigned num_threads, size_t queue_capacity = 0)
      : capacity_(queue_capacity) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] {
        worker_index_ = static_cast<int>(i);
        WorkerLoop();
      });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Outcome of a TrySubmit admission attempt.
  enum class TrySubmitResult {
    kAccepted,   // task enqueued; the future will be satisfied
    kQueueFull,  // bounded queue at capacity; nothing enqueued
    kShutdown,   // pool is stopping/stopped; nothing enqueued
  };

  // Enqueues `fn` and returns a future for its result. Blocks while the
  // bounded queue is full. After Shutdown() the task runs inline on the
  // calling thread (no worker remains to drain it, but the future must
  // still be satisfied).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [this] {
        return stopping_ || capacity_ == 0 || queue_.size() < capacity_;
      });
      if (stopping_) {
        lock.unlock();
        (*task)();
        return result;
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    not_empty_.notify_one();
    return result;
  }

  // Non-blocking admission: enqueues `fn` only when the pool accepts work
  // and the bounded queue has room, otherwise reports why. `*out` is set
  // only on kAccepted.
  template <typename Fn>
  TrySubmitResult TrySubmit(
      Fn&& fn, std::future<std::invoke_result_t<std::decay_t<Fn>>>* out) {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_) return TrySubmitResult::kShutdown;
      if (capacity_ != 0 && queue_.size() >= capacity_) {
        return TrySubmitResult::kQueueFull;
      }
      *out = task->get_future();
      queue_.emplace_back([task] { (*task)(); });
    }
    not_empty_.notify_one();
    return TrySubmitResult::kAccepted;
  }

  // Drains every already-submitted task, then joins the workers. Safe to
  // call from multiple threads and multiple times; later calls are no-ops.
  void Shutdown() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    std::lock_guard<std::mutex> join_lock(join_mu_);
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  size_t QueueDepth() const {
    std::unique_lock<std::mutex> lock(mu_);
    return queue_.size();
  }

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Index in [0, num_threads) of the pool worker running the calling
  // thread, or -1 off-pool. A task that runs on some pool sees that pool's
  // index; the query engine uses this for per-worker serving counters.
  static int CurrentWorkerIndex() { return worker_index_; }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and fully drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      not_full_.notify_one();
      task();
    }
  }

  inline static thread_local int worker_index_ = -1;

  mutable std::mutex mu_;
  std::mutex join_mu_;  // serializes concurrent Shutdown() joins
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  size_t capacity_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace imageproof

#endif  // IMAGEPROOF_COMMON_THREAD_POOL_H_
