// Lightweight, exception-free error handling for the ImageProof library.
//
// Library code never throws: fallible operations return Status or Result<T>.
// A Status is either OK or carries a machine-readable StatusCode plus a short
// human-readable message describing the first failed check (verification code
// uses the message to name the violated security property; the serving layer
// uses the code to pick a degradation behavior — shed, retry, or reject).

#ifndef IMAGEPROOF_COMMON_STATUS_H_
#define IMAGEPROOF_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace imageproof {

// Coarse failure taxonomy for the serving and storage layers. kError is the
// generic "check failed" bucket (verification rejects, logical update
// failures); the other codes drive distinct behaviors:
//   kOverloaded       admission rejected; the submission queue is full
//   kDeadlineExceeded the query's deadline expired in queue or in flight
//   kUnavailable      the engine is stopped/draining; nothing was attempted
//   kCorrupted        malformed or tampered bytes from an untrusted source
//                     (truncation, overflow lengths, bit flips) — retryable
//                     when the source is a transient fault, never accepted
enum class StatusCode : uint8_t {
  kOk = 0,
  kError = 1,
  kOverloaded = 2,
  kDeadlineExceeded = 3,
  kUnavailable = 4,
  kCorrupted = 5,
};

inline const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kError:
      return "ERROR";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCorrupted:
      return "CORRUPTED";
  }
  return "UNKNOWN";
}

// Outcome of a fallible operation. Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    return WithCode(StatusCode::kError, std::move(message));
  }
  static Status Overloaded(std::string message) {
    return WithCode(StatusCode::kOverloaded, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return WithCode(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return WithCode(StatusCode::kUnavailable, std::move(message));
  }
  static Status Corrupted(std::string message) {
    return WithCode(StatusCode::kCorrupted, std::move(message));
  }
  static Status WithCode(StatusCode code, std::string message) {
    Status s;
    s.code_ = code == StatusCode::kOk ? StatusCode::kError : code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  // Message of a non-OK status; empty string when OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::optional<std::string> message_;
};

// A value or an error. Use `ok()` before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  static Result<T> Error(std::string message) {
    return Result<T>(Status::Error(std::move(message)));
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace imageproof

#endif  // IMAGEPROOF_COMMON_STATUS_H_
