// Lightweight, exception-free error handling for the ImageProof library.
//
// Library code never throws: fallible operations return Status or Result<T>.
// A Status is either OK or carries a short human-readable message describing
// the first failed check (verification code uses this to name the violated
// security property).

#ifndef IMAGEPROOF_COMMON_STATUS_H_
#define IMAGEPROOF_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace imageproof {

// Outcome of a fallible operation. Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return !message_.has_value(); }
  // Message of a non-OK status; empty string when OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  std::optional<std::string> message_;
};

// A value or an error. Use `ok()` before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  static Result<T> Error(std::string message) {
    return Result<T>(Status::Error(std::move(message)));
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace imageproof

#endif  // IMAGEPROOF_COMMON_STATUS_H_
