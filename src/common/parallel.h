// Minimal deterministic data-parallelism helper, used for the owner's ADS
// construction (per-list digest chains, cluster commitments, tree builds
// are all independent) and for the intra-query loops of the serving path
// (per-tree MRKD searches, per-feature AKM and exact-nearest scans).
//
// ParallelFor partitions [0, n) into contiguous chunks, one per worker.
// Each index is processed exactly once and the result arrays the callers
// write into are disjoint per index, so the outcome is bit-identical to the
// serial loop regardless of thread count — the determinism invariant the
// query engine's golden tests lock in.

#ifndef IMAGEPROOF_COMMON_PARALLEL_H_
#define IMAGEPROOF_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace imageproof {

// Invokes fn(i) for every i in [0, n), using up to `max_threads` workers.
// `max_threads` of 0 means hardware concurrency; an explicit count is
// honored as given (even above the core count — oversubscription is how
// the determinism tests exercise real interleavings on small machines).
// `grain` is the minimum number of indices worth giving one worker: the
// loop runs serially unless at least two workers get >= `grain` indices
// each. The owner-side default (64) keeps tiny loops serial; the query
// engine passes grain=1 to split even an 8-tree loop across workers.
template <typename Fn>
void ParallelFor(size_t n, Fn&& fn, unsigned max_threads = 0,
                 size_t grain = 64) {
  unsigned workers;
  if (max_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : hw;
  } else {
    workers = max_threads;
  }
  if (grain == 0) grain = 1;
  size_t max_useful = n / grain;  // workers that can each get >= grain
  workers = static_cast<unsigned>(
      std::min<size_t>(workers, std::max<size_t>(max_useful, 1)));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  size_t chunk = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

// Invokes fn(begin, end) over disjoint contiguous chunks of [0, n) of at
// most `chunk` indices each, parallelized across workers. For callers whose
// inner loop wants a *range* rather than a single index — typically to feed
// a batch API (crypto::HashBatch) or to amortize per-call setup. Chunks are
// fixed by `chunk` alone, so the work decomposition (and any batched hash
// schedule) is identical at every thread count.
template <typename Fn>
void ParallelChunks(size_t n, size_t chunk, Fn&& fn, unsigned max_threads = 0) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const size_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks == 1) {
    fn(size_t{0}, n);
    return;
  }
  ParallelFor(
      num_chunks,
      [&](size_t c) {
        size_t begin = c * chunk;
        size_t end = std::min(n, begin + chunk);
        fn(begin, end);
      },
      max_threads, /*grain=*/1);
}

}  // namespace imageproof

#endif  // IMAGEPROOF_COMMON_PARALLEL_H_
