// Minimal deterministic data-parallelism helper for the owner's ADS
// construction (per-list digest chains, cluster commitments, tree builds
// are all independent).
//
// ParallelFor partitions [0, n) into contiguous chunks, one per worker.
// Each index is processed exactly once and the result arrays the callers
// write into are disjoint per index, so the outcome is bit-identical to the
// serial loop regardless of thread count.

#ifndef IMAGEPROOF_COMMON_PARALLEL_H_
#define IMAGEPROOF_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace imageproof {

// Invokes fn(i) for every i in [0, n), using up to `max_threads` workers
// (0 = hardware concurrency). Falls back to the plain loop for small n.
template <typename Fn>
void ParallelFor(size_t n, Fn&& fn, unsigned max_threads = 0) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  unsigned workers = max_threads == 0 ? hw : std::min(max_threads, hw);
  if (workers <= 1 || n < 2 * workers || n < 64) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  size_t chunk = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace imageproof

#endif  // IMAGEPROOF_COMMON_PARALLEL_H_
