// Scalar group-varint encode (the only encoder — canonical bytes) and the
// portable decode plus the runtime dispatch point. The AVX2 decode lives in
// varint_kernels_avx2.cc, the only TU built with -mavx2.

#include "common/varint_kernels.h"

#include <cstdlib>

namespace imageproof::kern {

namespace {

inline uint32_t ByteLen(uint32_t v) {
  return 1u + (v > 0xFFu) + (v > 0xFFFFu) + (v > 0xFFFFFFu);
}

Status DecodeDispatch(ByteReader& r, size_t n, uint32_t* out) {
  static const internal::GroupVarintDecodeFn fn = [] {
    if (std::getenv("IMAGEPROOF_NO_AVX2") == nullptr) {
      if (auto avx2 = internal::GroupVarintDecodeAvx2()) return avx2;
    }
    return &internal::GroupVarintDecodePortable;
  }();
  return fn(r, n, out);
}

}  // namespace

void GroupVarintEncode(const uint32_t* values, size_t n, ByteWriter& w) {
  for (size_t q = 0; q < n; q += 4) {
    size_t in_quad = n - q < 4 ? n - q : 4;
    uint8_t ctrl = 0;
    for (size_t j = 0; j < in_quad; ++j) {
      ctrl |= static_cast<uint8_t>((ByteLen(values[q + j]) - 1) << (2 * j));
    }
    w.PutU8(ctrl);
  }
  for (size_t i = 0; i < n; ++i) {
    uint32_t v = values[i];
    uint32_t len = ByteLen(v);
    for (uint32_t b = 0; b < len; ++b) {
      w.PutU8(static_cast<uint8_t>(v >> (8 * b)));
    }
  }
}

size_t GroupVarintEncodedBytes(const uint32_t* values, size_t n) {
  size_t total = (n + 3) / 4;
  for (size_t i = 0; i < n; ++i) total += ByteLen(values[i]);
  return total;
}

Status GroupVarintDecode(ByteReader& r, size_t n, uint32_t* out) {
  return DecodeDispatch(r, n, out);
}

bool GroupVarintAvx2Active() {
  // Probe the resolved dispatch once via a zero-length decode side effect:
  // cheaper to just re-evaluate the same resolution conditions.
  static const bool active = [] {
    return std::getenv("IMAGEPROOF_NO_AVX2") == nullptr &&
           internal::GroupVarintDecodeAvx2() != nullptr;
  }();
  return active;
}

namespace internal {

Status GroupVarintDecodePortable(ByteReader& r, size_t n, uint32_t* out) {
  if (n == 0) return Status::Ok();
  size_t num_ctrl = (n + 3) / 4;
  if (r.remaining() < num_ctrl) {
    return Status::Corrupted("gv: truncated control bytes");
  }
  const uint8_t* ctrl = r.data();
  const uint8_t* data = ctrl + num_ctrl;
  size_t data_avail = r.remaining() - num_ctrl;
  size_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t len = ((ctrl[i >> 2] >> (2 * (i & 3))) & 3u) + 1u;
    if (data_avail - used < len) {
      return Status::Corrupted("gv: truncated data bytes");
    }
    uint32_t v = 0;
    for (uint32_t b = 0; b < len; ++b) {
      v |= static_cast<uint32_t>(data[used + b]) << (8 * b);
    }
    out[i] = v;
    used += len;
  }
  return r.Skip(num_ctrl + used);
}

#ifndef IMAGEPROOF_KERNELS_AVX2
GroupVarintDecodeFn GroupVarintDecodeAvx2() { return nullptr; }
#endif

}  // namespace internal

}  // namespace imageproof::kern
