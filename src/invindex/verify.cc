#include "invindex/verify.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "common/varint_kernels.h"
#include "crypto/sha3.h"
#include "invindex/merkle_inv_index.h"
#include "invindex/vo_compress.h"

namespace imageproof::invindex {

namespace {

struct ParsedList {
  ClusterId cluster = 0;
  double weight = 0.0;
  std::vector<std::pair<ImageId, double>> popped;
  bool has_remaining = false;
  bool filter_included = false;
  Digest first_remaining = Digest::Zero();
  Bytes filter_bytes;
  Digest theta_digest = Digest::Zero();
};

Status ParseLists(const Bytes& vo, bool expect_filters,
                  std::vector<ParsedList>* out) {
  ByteReader r(vo);
  uint8_t vo_flags;
  Status s = r.GetU8(&vo_flags);
  if (!s.ok()) return s;
  if (vo_flags > 3) return Status::Error("inv: non-canonical flag byte");
  const bool compressed = vo_flags & kVoFlagCompressed;
  const uint8_t use_filters = vo_flags & 1;
  if ((use_filters != 0) != expect_filters) {
    return Status::Error("inv: VO filter mode mismatch");
  }
  uint64_t num_lists;
  if (!(s = r.GetVarint(&num_lists)).ok()) return s;
  if (num_lists > r.remaining() / 10) {
    return Status::Error("inv: list count exceeds input size");
  }
  out->clear();
  out->reserve(num_lists);
  std::vector<uint32_t> id_buf, hi_buf;  // reused across lists
  for (uint64_t i = 0; i < num_lists; ++i) {
    ParsedList pl;
    uint64_t cid;
    if (!(s = r.GetVarint(&cid)).ok()) return s;
    pl.cluster = static_cast<ClusterId>(cid);
    if (!(s = r.GetF64(&pl.weight)).ok()) return s;
    uint64_t num_popped;
    if (!(s = r.GetVarint(&num_popped)).ok()) return s;
    // Each popped posting occupies at least 9 bytes uncompressed (varint
    // id + f64 impact) and at least 6 compressed (>=1.25-byte group-varint
    // id and impact-high words + 4-byte impact-low word), so a count
    // beyond the remaining input is a lie; this bounds the allocation by
    // the input size.
    if (num_popped > r.remaining() / (compressed ? 6 : 9)) {
      return Status::Error("inv: popped count exceeds input size");
    }
    pl.popped.reserve(num_popped);
    if (!compressed) {
      for (uint64_t j = 0; j < num_popped; ++j) {
        uint64_t id;
        double impact;
        if (!(s = r.GetVarint(&id)).ok()) return s;
        if (!(s = r.GetF64(&impact)).ok()) return s;
        pl.popped.emplace_back(id, impact);
      }
    } else if (num_popped > 0) {
      uint8_t lflags = 0;
      if (!(s = r.GetU8(&lflags)).ok()) return s;
      if (lflags & ~(kGvIds | kGvImpacts)) {
        return Status::Error("inv: unknown list flags");
      }
      pl.popped.resize(num_popped);
      if (lflags & kGvIds) {
        // ZigZag deltas (postings ride in impact order, so ids are not
        // monotone); the first value is the absolute id, zigzagged.
        id_buf.resize(num_popped);
        if (!(s = kern::GroupVarintDecode(r, num_popped, id_buf.data())).ok()) {
          return s;
        }
        uint64_t prev = 0;
        for (uint64_t j = 0; j < num_popped; ++j) {
          prev = static_cast<uint64_t>(static_cast<int64_t>(prev) +
                                       kern::ZigZagDecode32(id_buf[j]));
          pl.popped[j].first = prev;
        }
      } else {
        for (uint64_t j = 0; j < num_popped; ++j) {
          uint64_t id;
          if (!(s = r.GetVarint(&id)).ok()) return s;
          pl.popped[j].first = id;
        }
      }
      if (lflags & kGvImpacts) {
        // Impacts descend, so the high words of their IEEE-754 bit
        // patterns never increase: ship the first high word absolute and
        // the rest as non-negative deltas, then the raw low words.
        hi_buf.resize(num_popped);
        if (!(s = kern::GroupVarintDecode(r, num_popped, hi_buf.data())).ok()) {
          return s;
        }
        uint32_t hi = 0;
        for (uint64_t j = 0; j < num_popped; ++j) {
          hi = (j == 0) ? hi_buf[j] : hi - hi_buf[j];
          uint32_t lo = 0;
          if (!(s = r.GetU32(&lo)).ok()) return s;
          uint64_t bits = (static_cast<uint64_t>(hi) << 32) | lo;
          pl.popped[j].second = std::bit_cast<double>(bits);
        }
      } else {
        for (uint64_t j = 0; j < num_popped; ++j) {
          if (!(s = r.GetF64(&pl.popped[j].second)).ok()) return s;
        }
      }
    }
    uint8_t flags = 0;
    if (!(s = r.GetU8(&flags)).ok()) return s;
    if (flags & ~3u) return Status::Error("inv: unknown flags");
    pl.has_remaining = flags & 1;
    pl.filter_included = flags & 2;
    if (pl.filter_included && !expect_filters) {
      return Status::Error("inv: filter shipped in baseline mode");
    }
    if (pl.has_remaining) {
      if (!(s = crypto::GetDigest(r, &pl.first_remaining)).ok()) return s;
    }
    if (expect_filters) {
      if (pl.filter_included) {
        if (!(s = r.GetBlob(&pl.filter_bytes)).ok()) return s;
      } else {
        if (!(s = crypto::GetDigest(r, &pl.theta_digest)).ok()) return s;
      }
    }
    out->push_back(std::move(pl));
  }
  if (!r.AtEnd()) return Status::Error("inv: trailing bytes in VO");
  return Status::Ok();
}

}  // namespace

Status VerifyInvVo(const Bytes& vo, const bovw::BovwVector& query_bovw,
                   const std::vector<ImageId>& claimed_topk,
                   size_t requested_k, bool expect_filters,
                   InvVerifyResult* out) {
  std::vector<ParsedList> lists;
  Status s = ParseLists(vo, expect_filters, &lists);
  if (!s.ok()) return s;

  // The VO must cover exactly the query's BoVW support, in order.
  if (lists.size() != query_bovw.entries.size()) {
    return Status::Error("inv: VO does not cover the query's BoVW support");
  }
  for (size_t i = 0; i < lists.size(); ++i) {
    if (lists[i].cluster != query_bovw.entries[i].first) {
      return Status::Error("inv: VO cluster set mismatch");
    }
  }

  const double norm = query_bovw.L2Norm();
  std::vector<BoundsList> bounds_lists;
  std::vector<const ParsedList*> relevant;  // aligned with bounds_lists

  for (const ParsedList& pl : lists) {
    // Reconstruct h_Gamma.
    if (pl.weight < 0) return Status::Error("inv: negative weight");
    Digest theta = Digest::Zero();
    std::optional<cuckoo::CuckooFilter> filter;
    if (expect_filters) {
      if (pl.filter_included) {
        auto f = cuckoo::CuckooFilter::Deserialize(pl.filter_bytes);
        if (!f.ok()) return f.status();
        theta = f->StateDigest();
        filter = std::move(*f);
      } else {
        theta = pl.theta_digest;
      }
    }
    Digest chain = pl.has_remaining ? pl.first_remaining : Digest::Zero();
    for (size_t j = pl.popped.size(); j-- > 0;) {
      chain = PostingDigest(pl.popped[j].first, pl.popped[j].second, chain);
    }
    out->list_digests[pl.cluster] = ListDigest(pl.weight, theta, chain);
    out->weights[pl.cluster] = pl.weight;
    out->popped_postings += pl.popped.size();

    uint32_t freq = query_bovw.FrequencyOf(pl.cluster);
    double q_impact = bovw::ImpactValue(pl.weight, freq, norm);
    bool is_relevant =
        q_impact > 0 && (pl.has_remaining || !pl.popped.empty());

    if (!is_relevant) {
      // Reveal discipline: an irrelevant (or empty) list must not pop
      // postings or ship a filter.
      if (q_impact <= 0 && !pl.popped.empty()) {
        return Status::Error("inv: postings popped for irrelevant list");
      }
      if (pl.filter_included) {
        return Status::Error("inv: filter shipped for irrelevant list");
      }
      continue;
    }
    // A relevant list must be bounded: either something was popped (finite
    // cap) or it is exhausted.
    if (requested_k > 0 && pl.popped.empty() && pl.has_remaining) {
      return Status::Error("inv: relevant list with no popped postings");
    }
    if (expect_filters && pl.has_remaining && !pl.filter_included) {
      return Status::Error("inv: missing filter for relevant list");
    }
    BoundsList bl;
    bl.cluster = pl.cluster;
    bl.q_impact = q_impact;
    bl.filter = std::move(filter);
    bounds_lists.push_back(std::move(bl));
    relevant.push_back(&pl);
  }

  // Replay every pop in canonical order.
  BoundsEngine engine(std::move(bounds_lists), expect_filters);
  for (size_t li = 0; li < relevant.size(); ++li) {
    for (const auto& [id, impact] : relevant[li]->popped) {
      s = engine.AddPopped(li, id, impact);
      if (!s.ok()) return s;
    }
    if (!relevant[li]->has_remaining) engine.MarkExhausted(li);
  }

  // The claimed results must be exactly the best popped images.
  if (claimed_topk.size() > requested_k) {
    return Status::Error("inv: more results than requested");
  }
  std::unordered_set<ImageId> dedup(claimed_topk.begin(), claimed_topk.end());
  if (dedup.size() != claimed_topk.size()) {
    return Status::Error("inv: duplicate result ids");
  }
  if (requested_k == 0) {
    // Nothing was requested, so nothing needs proving beyond the digests.
    if (!claimed_topk.empty() || out->popped_postings != 0) {
      return Status::Error("inv: nonempty proof for an empty request");
    }
    out->topk.clear();
    out->topk_exact = true;  // vacuously: no claimed scores
    return Status::Ok();
  }
  if (claimed_topk.size() < requested_k) {
    // Fewer than k results are only acceptable when the relevant lists are
    // provably drained and contain no further distinct image.
    for (size_t li = 0; li < relevant.size(); ++li) {
      if (!engine.Exhausted(li)) {
        return Status::Error("inv: short result set with unpopped postings");
      }
    }
    if (engine.Scores().size() != claimed_topk.size()) {
      return Status::Error("inv: short result set hides popped images");
    }
  }
  double sk_lower = 0;
  if (!VerifyClaimedTopK(engine, claimed_topk, &sk_lower)) {
    return Status::Error("inv: claimed results are not the top-k popped images");
  }

  // Termination conditions.
  if (sk_lower < engine.PiUpper()) {
    return Status::Error("inv: condition 1 fails (unseen images may rank higher)");
  }
  std::unordered_set<ImageId> topk_set(claimed_topk.begin(), claimed_topk.end());
  for (const auto& [id, score] : engine.Scores()) {
    if (topk_set.contains(id)) continue;
    if (engine.SUpper(id) > sk_lower) {
      return Status::Error("inv: condition 2 fails (popped image may rank higher)");
    }
  }

  out->topk_exact = true;
  for (ImageId id : claimed_topk) {
    if (!engine.PossibleLists(id).empty()) {
      out->topk_exact = false;
      break;
    }
  }

  out->topk.clear();
  for (ImageId id : claimed_topk) {
    out->topk.push_back({id, engine.ScoreOf(id)});
  }
  std::sort(out->topk.begin(), out->topk.end(),
            [](const bovw::ScoredImage& a, const bovw::ScoredImage& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  return Status::Ok();
}

}  // namespace imageproof::invindex
