// Client-side verification of an InvSearch VO (Section IV-B "Verification").
//
// The client
//   1. parses the per-list reveals, checks the impact ordering of every
//      popped prefix, and reconstructs each list digest h_Gamma from the
//      popped postings + first-remaining digest + h(Theta) — these digests
//      are then compared (by the caller) against the ones bound into the
//      MRKD-tree leaves;
//   2. recomputes the query impacts p_{Q,c} from the verified BoVW vector
//      and the w_c values in the VO, checking the reveal discipline
//      (relevant lists have pops + filters, irrelevant ones do not);
//   3. replays every pop through the same BoundsEngine the SP used, in
//      canonical order, deleting popped images from the shipped filters;
//   4. checks that the claimed results are exactly the k best popped images
//      and that both termination conditions hold.

#ifndef IMAGEPROOF_INVINDEX_VERIFY_H_
#define IMAGEPROOF_INVINDEX_VERIFY_H_

#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "invindex/bounds.h"

namespace imageproof::invindex {

using crypto::Digest;

struct InvVerifyResult {
  // Claimed results with their verified lower-bound scores, best first.
  std::vector<bovw::ScoredImage> topk;
  // Reconstructed h_Gamma for every support cluster; the caller must match
  // these against the digests authenticated by the MRKD-tree.
  std::map<ClusterId, Digest> list_digests;
  std::map<ClusterId, double> weights;  // w_c per support cluster
  size_t popped_postings = 0;
  // True when every claimed result's verified score is provably exact: no
  // unpopped suffix of any relevant list can still contain the image — its
  // post-deletion cuckoo-filter state proves absence (cuckoo filters have
  // no false negatives), or the list is exhausted. Guaranteed by an SP
  // serving with InvSearchParams::settle_exact_topk; required by the
  // sharded composite verifier (shard/composite_client.h), which merges
  // per-shard results by these scores.
  bool topk_exact = false;
};

// `query_bovw` is the client's (already verified) BoVW vector of the query;
// `claimed_topk` the SP's result ids; `requested_k` the k the client asked
// for; `expect_filters` selects ImageProof vs. Baseline VO layout.
Status VerifyInvVo(const Bytes& vo, const bovw::BovwVector& query_bovw,
                   const std::vector<ImageId>& claimed_topk,
                   size_t requested_k, bool expect_filters,
                   InvVerifyResult* out);

}  // namespace imageproof::invindex

#endif  // IMAGEPROOF_INVINDEX_VERIFY_H_
