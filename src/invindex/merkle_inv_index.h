// Merkle inverted index with cuckoo filters (Section IV-B) — the second ADS
// of ImageProof.
//
// Each cluster c with a nonzero posting list gets a Merkle inverted list:
//   * postings <I, p_{I,c}> sorted by impact descending (id ascending on
//     ties), each carrying a backward-chained digest
//       h_{pos_j} = h(I | p_{I,c} | h_{pos_{j+1}})         (Definition 4)
//     with h_{pos_{n+1}} = 0^256, so a VO can reveal exactly a prefix;
//   * a cuckoo filter over the list's image ids (shared geometry across all
//     lists, as Lemma 1 requires);
//   * the list digest
//       h_Gamma = h(w_c | h(Theta) | h_{pos_1})            (Definition 5)
//     which the MRKD-tree leaves embed, linking the two ADSs.
//
// `with_filters = false` builds the plain variant used by the Baseline
// scheme (Pang & Mouratidis [15] adapted): same chain, h(Theta) fixed to
// 0^256, no filters shipped or consulted.

#ifndef IMAGEPROOF_INVINDEX_MERKLE_INV_INDEX_H_
#define IMAGEPROOF_INVINDEX_MERKLE_INV_INDEX_H_

#include <optional>
#include <vector>

#include "bovw/bovw.h"
#include "crypto/digest.h"
#include "cuckoo/cuckoo_filter.h"

namespace imageproof::invindex {

using bovw::ClusterId;
using bovw::ImageId;
using crypto::Digest;

struct MerklePosting {
  ImageId id = 0;
  double impact = 0.0;
  Digest digest;  // h(id | impact | next digest)
};

// h(id | impact | next) — shared by the owner's build and the client's
// chain reconstruction.
Digest PostingDigest(ImageId id, double impact, const Digest& next);

// h(w | h(Theta) | h_pos1) per Definition 5.
Digest ListDigest(double weight, const Digest& theta_digest,
                  const Digest& first_posting_digest);

struct MerkleInvertedList {
  ClusterId cluster = 0;
  double weight = 0.0;                 // w_c
  std::vector<MerklePosting> postings; // impact desc, id asc on ties
  std::optional<cuckoo::CuckooFilter> filter;  // nullopt in plain mode
  Digest theta_digest;                 // h(Theta); zero in plain mode
  Digest digest;                       // h_Gamma

  bool empty() const { return postings.empty(); }
  // Digest of the first posting, or zero for an empty list.
  Digest FirstPostingDigest() const {
    return postings.empty() ? Digest::Zero() : postings.front().digest;
  }
};

class MerkleInvertedIndex {
 public:
  // Builds the full index over a corpus of (image id, BoVW vector) pairs.
  // All filters share one geometry derived from the longest posting list
  // (the paper's 60% sizing rule) and `filter_seed` — unless `geometry` is
  // given, which pins the exact shared CuckooParams. The geometry is part
  // of the committed (signed) state: a reload of a package whose lists
  // grew through incremental updates must rebuild under the geometry the
  // digests were derived with, not one re-sized from the current lists.
  static MerkleInvertedIndex Build(
      size_t num_clusters,
      const std::vector<std::pair<ImageId, bovw::BovwVector>>& corpus,
      const bovw::ClusterWeights& weights, bool with_filters,
      uint32_t fingerprint_bits = 8, uint64_t filter_seed = 0xF117E2,
      std::optional<cuckoo::CuckooParams> geometry = std::nullopt);

  // Reattaches a persisted index WITHOUT walking the posting chains — the
  // cold-start path of the mmap package store. The caller supplies fully
  // populated lists (cluster, weight, postings with their stored chain
  // digests, deserialized filter); Restore validates the ordering
  // invariants and the shared filter geometry, then recomputes only
  // h(Theta) from the filter state and h_Gamma per Definition 5 — one hash
  // per list instead of one per posting. Stored chain digests are bound to
  // the owner's signature through h_pos1 (which h_Gamma covers), and
  // clients re-derive revealed chains on every query, so a tampered stored
  // digest fails either the open-time root check or client verification.
  static Result<MerkleInvertedIndex> Restore(
      const cuckoo::CuckooParams& geometry, bool with_filters,
      std::vector<MerkleInvertedList> lists);

  // Recomputes every posting-chain digest from the raw posting data and
  // compares it with the stored value — the package store's deep-verify
  // mode. kCorrupted on the first mismatch.
  Status VerifyChains() const;

  bool with_filters() const { return with_filters_; }
  size_t num_clusters() const { return lists_.size(); }
  const MerkleInvertedList& list(ClusterId c) const { return lists_[c]; }

  // h_Gamma per cluster, in cluster order — input to the MRKD-tree build.
  std::vector<Digest> ListDigests() const;

  size_t TotalPostings() const;

  // ----- Incremental updates (owner-side; see core/update.h) -----
  //
  // Weights are frozen at build time (the usual IR practice between full
  // index rebuilds), so an image touching a list changes only that list:
  // its posting is inserted/removed in impact order, the digest chain is
  // recomputed, and the filter is rebuilt deterministically with the
  // index-wide geometry. Fails if the shared filter geometry can no longer
  // hold the list (a full rebuild is then required).

  Status ApplyInsert(ClusterId c, ImageId id, double impact);
  Status ApplyRemove(ClusterId c, ImageId id);

  const cuckoo::CuckooParams& filter_params() const { return filter_params_; }

 private:
  // Recomputes the chain prefix [0, upto) against the still-valid suffix
  // anchor at `upto` (or the zero digest at the list end), rebuilds the
  // filter, and refreshes the list digest. Updates pass the smallest prefix
  // that covers their edit; a full rechain is upto == postings.size().
  Status RepairList(MerkleInvertedList* list, size_t upto);

  bool with_filters_ = true;
  cuckoo::CuckooParams filter_params_;
  std::vector<MerkleInvertedList> lists_;
};

}  // namespace imageproof::invindex

#endif  // IMAGEPROOF_INVINDEX_MERKLE_INV_INDEX_H_
