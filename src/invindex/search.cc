#include "invindex/search.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>

#include "common/varint_kernels.h"
#include "crypto/sha3.h"
#include "invindex/vo_compress.h"

namespace imageproof::invindex {

namespace {

// SP-side view of one relevant list during the search.
struct SearchList {
  const MerkleInvertedList* list = nullptr;
  double q_impact = 0.0;
  size_t next_pop = 0;  // postings [0, next_pop) have been popped
};

// Rebuilds a bounds engine exactly as the client will: lists in cluster
// order, pops in prefix order.
BoundsEngine CanonicalEngine(const std::vector<SearchList>& lists,
                             bool use_filters) {
  std::vector<BoundsList> bl;
  bl.reserve(lists.size());
  for (const SearchList& sl : lists) {
    BoundsList b;
    b.cluster = sl.list->cluster;
    b.q_impact = sl.q_impact;
    bool exhausted = sl.next_pop >= sl.list->postings.size();
    if (use_filters && !exhausted) b.filter = sl.list->filter;
    bl.push_back(std::move(b));
  }
  BoundsEngine engine(std::move(bl), use_filters);
  for (size_t li = 0; li < lists.size(); ++li) {
    const SearchList& sl = lists[li];
    for (size_t i = 0; i < sl.next_pop; ++i) {
      Status s = engine.AddPopped(li, sl.list->postings[i].id,
                                  sl.list->postings[i].impact);
      (void)s;  // owner-built data always satisfies the invariants
    }
    if (sl.next_pop >= sl.list->postings.size()) engine.MarkExhausted(li);
  }
  return engine;
}

bool ConditionsHold(const BoundsEngine& engine,
                    const std::vector<ImageId>& topk_ids) {
  double skl = 0;
  if (!VerifyClaimedTopK(engine, topk_ids, &skl)) return false;
  if (skl < engine.PiUpper()) return false;  // Condition 1
  std::unordered_set<ImageId> topk_set(topk_ids.begin(), topk_ids.end());
  for (const auto& [id, score] : engine.Scores()) {
    if (topk_set.contains(id)) continue;
    if (engine.SUpper(id) > skl) return false;  // Condition 2
  }
  return true;
}

}  // namespace

InvSearchResult InvSearch(const MerkleInvertedIndex& index,
                          const bovw::BovwVector& query_bovw,
                          const InvSearchParams& params,
                          kern::SearchScratch* scratch) {
  InvSearchResult result;
  kern::SearchScratch local_scratch;
  kern::SearchScratch& scr = scratch ? *scratch : local_scratch;
  const bool use_filters = index.with_filters();
  const double norm = query_bovw.L2Norm();

  // Support clusters (sorted by construction of BovwVector) and the
  // relevant subset (q_impact > 0, nonempty list).
  std::vector<SearchList> relevant;
  for (const auto& [c, f] : query_bovw.entries) {
    if (c >= index.num_clusters()) continue;
    const MerkleInvertedList& list = index.list(c);
    double q_impact = bovw::ImpactValue(list.weight, f, norm);
    if (q_impact > 0 && !list.empty()) {
      relevant.push_back(SearchList{&list, q_impact, 0});
    }
  }
  result.stats.relevant_lists = relevant.size();
  for (const SearchList& sl : relevant) {
    result.stats.relevant_postings += sl.list->postings.size();
  }

  // Exact top-k by full accumulation over the relevant lists: flat
  // open-addressing accumulator (zero-alloc when warm) + bounded size-k
  // heap under the total order (score desc, id asc) — selects exactly what
  // the full sort-and-truncate this replaces selected, without
  // materializing or ordering the non-winners.
  kern::ScoreAccumulator& exact = scr.scores;
  exact.Clear();
  for (const SearchList& sl : relevant) {
    for (const MerklePosting& p : sl.list->postings) {
      exact.Add(p.id, sl.q_impact * p.impact);
    }
  }
  scr.score_heap.clear();
  for (size_t i = 0; i < exact.size(); ++i) {
    kern::TopKPush(scr.score_heap, params.k, {exact.value(i), exact.key(i)});
  }
  kern::TopKFinish(scr.score_heap);
  size_t k = scr.score_heap.size();
  result.topk.resize(k);
  for (size_t i = 0; i < k; ++i) {
    result.topk[i] = {scr.score_heap[i].id, scr.score_heap[i].score};
  }
  std::vector<ImageId> topk_ids;
  for (const auto& si : result.topk) topk_ids.push_back(si.id);
  std::unordered_set<ImageId> topk_set(topk_ids.begin(), topk_ids.end());

  // k == 0 asks for nothing, so nothing needs proving: emit a pop-free VO
  // (the client skips the termination conditions for an empty request).
  const bool trivial = k == 0;

  // Line 1 of Algorithm 3: pop everything up to the deepest top-k
  // occurrence in each list, and at least the head posting of every list so
  // every cap is finite. These pops are known up front, so the bounds
  // engine is constructed directly in the canonical (client) order with
  // them applied — one feed instead of two. The lazy extension pops only
  // the heads and reveals top-k occurrences on demand later.
  for (size_t li = 0; !trivial && li < relevant.size(); ++li) {
    const auto& postings = relevant[li].list->postings;
    size_t deepest = 0;  // pop at least one
    if (!params.lazy_topk_pops) {
      for (size_t i = 0; i < postings.size(); ++i) {
        if (topk_set.contains(postings[i].id)) deepest = i;
      }
    }
    relevant[li].next_pop = deepest + 1;
    result.stats.popped_initial += relevant[li].next_pop;
    result.stats.popped_postings += relevant[li].next_pop;
  }
  BoundsEngine engine = CanonicalEngine(relevant, use_filters);

  // Lazy mode: the schedule of unrevealed top-k occurrences, highest impact
  // first (each reveal pops the containing list down to the occurrence).
  struct Occurrence {
    double impact;
    size_t li;
    size_t pos;
  };
  std::vector<Occurrence> claimed_occurrences;
  if (params.lazy_topk_pops && !trivial) {
    for (size_t li = 0; li < relevant.size(); ++li) {
      const auto& postings = relevant[li].list->postings;
      for (size_t i = 0; i < postings.size(); ++i) {
        if (topk_set.contains(postings[i].id)) {
          claimed_occurrences.push_back({postings[i].impact, li, i});
        }
      }
    }
    std::sort(claimed_occurrences.begin(), claimed_occurrences.end(),
              [](const Occurrence& a, const Occurrence& b) {
                return a.impact > b.impact;
              });
  }
  size_t next_occurrence = 0;

  auto pop_one = [&](size_t li) -> bool {
    SearchList& sl = relevant[li];
    if (sl.next_pop >= sl.list->postings.size()) return false;
    const MerklePosting& p = sl.list->postings[sl.next_pop++];
    Status s = engine.AddPopped(li, p.id, p.impact);
    (void)s;
    ++result.stats.popped_postings;
    if (sl.next_pop >= sl.list->postings.size()) engine.MarkExhausted(li);
    return true;
  };

  // During the search s_k^L = min lower-bound score over the claimed top-k.
  // With eager line-1 popping these bounds are exact; in lazy mode they are
  // partial but still valid lower bounds. O(k) per check.
  auto sk_lower = [&]() {
    double skl = std::numeric_limits<double>::infinity();
    for (ImageId id : topk_ids) skl = std::min(skl, engine.ScoreOf(id));
    return topk_ids.empty() ? 0.0 : skl;
  };

  // Condition 1 loop: pop from the list with the largest remaining
  // contribution until s_k^L >= pi^U.
  auto run_condition1 = [&]() {
    while (!trivial) {
      ++result.stats.condition_checks;
      if (sk_lower() >= engine.PiUpper()) break;
      // Greedy: reduce the largest q_impact * cap.
      size_t best = relevant.size();
      double best_val = -1;
      for (size_t li = 0; li < relevant.size(); ++li) {
        if (engine.Exhausted(li)) continue;
        double v = relevant[li].q_impact * engine.Cap(li);
        if (v > best_val) {
          best_val = v;
          best = li;
        }
      }
      if (best == relevant.size()) break;  // everything popped
      for (size_t i = 0; i < params.check_batch; ++i) {
        if (!pop_one(best)) break;
        ++result.stats.popped_cond1;
      }
    }
  };

  // Condition 2 loop: resolve every popped non-result whose upper bound
  // still exceeds s_k^L.
  auto run_condition2 = [&]() {
    while (!trivial) {
      ++result.stats.condition_checks;
      double skl = sk_lower();
      ImageId violator = 0;
      bool found = false;
      for (const auto& [id, score] : engine.Scores()) {
        if (topk_set.contains(id)) continue;
        if (engine.SUpper(id) > skl) {
          violator = id;
          found = true;
          break;
        }
      }
      if (!found) break;
      // Pop from the lists that may still contain the violator until its
      // bound drops or its true contribution is revealed.
      auto possible = engine.PossibleLists(violator);
      bool progressed = false;
      double skl_now = skl;
      for (size_t li : possible) {
        // Drain this list until the violator's true contribution is
        // revealed (or the list ends), re-checking its bound periodically
        // so we stop as soon as the remaining caps alone settle it.
        size_t popped_here = 0;
        while (!engine.Exhausted(li) && !engine.PoppedIn(li, violator)) {
          if (!pop_one(li)) break;
          ++result.stats.popped_cond2;
          ++popped_here;
          if (popped_here % params.check_batch == 0 &&
              engine.SUpper(violator) <= skl_now) {
            break;
          }
        }
        if (popped_here > 0) progressed = true;
        if (engine.SUpper(violator) <= skl_now) break;
      }
      if (!progressed) break;  // nothing left to pop; bounds are final
    }
  };

  // Settle pass (settle_exact_topk): pop until no unpopped suffix can still
  // contain a claimed image, so every claimed score the client reconstructs
  // is exact. Filter membership only shrinks as pops delete fingerprints
  // (and the final multiset state is pop-order invariant), so settledness
  // is monotone: later condition pops can never un-settle it. Condition 1
  // also survives the extra pops (s_k^L only grows, pi^U only shrinks);
  // newly revealed non-result images are re-settled by run_condition2.
  auto run_settle = [&]() {
    while (params.settle_exact_topk && !trivial) {
      size_t pop_li = relevant.size();
      for (ImageId id : topk_ids) {
        std::vector<size_t> possible = engine.PossibleLists(id);
        if (!possible.empty()) {
          pop_li = possible.front();
          break;
        }
      }
      if (pop_li == relevant.size()) break;  // every claimed score is exact
      for (size_t i = 0; i < params.check_batch; ++i) {
        if (!pop_one(pop_li)) break;
        ++result.stats.popped_settle;
      }
      run_condition2();
    }
  };

  run_condition1();
  run_condition2();

  // Lazy mode: the claimed set must also be the k best by *revealed* score
  // (which the client checks). Reveal claimed occurrences, highest impact
  // first, until it is, re-settling the conditions after each batch.
  while (params.lazy_topk_pops && !trivial) {
    double skl_check = 0;
    ++result.stats.condition_checks;
    if (VerifyClaimedTopK(engine, topk_ids, &skl_check)) break;
    bool revealed = false;
    while (next_occurrence < claimed_occurrences.size()) {
      const Occurrence& occ = claimed_occurrences[next_occurrence++];
      if (occ.pos < relevant[occ.li].next_pop) continue;  // already popped
      while (relevant[occ.li].next_pop <= occ.pos) {
        if (!pop_one(occ.li)) break;
      }
      revealed = true;
      break;
    }
    if (!revealed) break;  // every occurrence revealed; ranking is exact
    run_condition1();
    run_condition2();
  }

  run_settle();

  // Final canonical re-check: evaluate the conditions exactly as the client
  // will (same summation order). On the rare float-ordering miss, keep
  // popping the largest remaining contribution and re-check.
  while (!trivial) {
    BoundsEngine canonical = CanonicalEngine(relevant, use_filters);
    ++result.stats.condition_checks;
    if (ConditionsHold(canonical, topk_ids)) break;
    size_t best = relevant.size();
    double best_val = -1;
    for (size_t li = 0; li < relevant.size(); ++li) {
      if (engine.Exhausted(li)) continue;
      double v = relevant[li].q_impact * engine.Cap(li);
      if (v > best_val) {
        best_val = v;
        best = li;
      }
    }
    if (best == relevant.size()) break;  // fully popped; conditions maximal
    for (size_t i = 0; i < params.check_batch; ++i) {
      if (!pop_one(best)) break;
    }
  }

  // ----- VO serialization -----
  ByteWriter w;
  const bool compress = params.compress_vo;
  w.PutU8(static_cast<uint8_t>((use_filters ? 1 : 0) |
                               (compress ? kVoFlagCompressed : 0)));
  // Every support cluster appears, relevant or not.
  std::map<size_t, size_t> relevant_by_cluster;  // cluster -> index
  for (size_t li = 0; li < relevant.size(); ++li) {
    relevant_by_cluster[relevant[li].list->cluster] = li;
  }
  std::vector<uint32_t> id_u32, hi_u32;  // reused across lists
  w.PutVarint(query_bovw.entries.size());
  for (const auto& [c, f] : query_bovw.entries) {
    const MerkleInvertedList& list = index.list(c);
    w.PutVarint(c);
    w.PutF64(list.weight);
    auto it = relevant_by_cluster.find(c);
    size_t popped = it == relevant_by_cluster.end()
                        ? 0
                        : relevant[it->second].next_pop;
    w.PutVarint(popped);
    if (!compress) {
      for (size_t i = 0; i < popped; ++i) {
        w.PutVarint(list.postings[i].id);
        w.PutF64(list.postings[i].impact);
      }
    } else if (popped > 0) {
      // Two split streams (see verify.cc ParseLists): zigzag-delta ids and
      // impact bit patterns as non-increasing high words (delta-coded) +
      // raw low words. Either stream falls back per list when a value
      // does not fit its u32 coding.
      id_u32.clear();
      hi_u32.clear();
      bool gv_ids = true, gv_impacts = true;
      uint64_t prev_id = 0;
      uint32_t prev_hi = 0;
      for (size_t i = 0; i < popped; ++i) {
        int64_t delta = static_cast<int64_t>(list.postings[i].id) -
                        static_cast<int64_t>(prev_id);
        prev_id = list.postings[i].id;
        uint64_t zz = (static_cast<uint64_t>(delta) << 1) ^
                      static_cast<uint64_t>(delta >> 63);
        if (zz > 0xFFFFFFFFull) gv_ids = false;
        id_u32.push_back(static_cast<uint32_t>(zz));
        uint64_t bits = std::bit_cast<uint64_t>(list.postings[i].impact);
        uint32_t hi = static_cast<uint32_t>(bits >> 32);
        if (i > 0 && hi > prev_hi) gv_impacts = false;
        hi_u32.push_back(i == 0 ? hi : prev_hi - hi);
        prev_hi = hi;
      }
      w.PutU8(static_cast<uint8_t>((gv_ids ? kGvIds : 0) |
                                   (gv_impacts ? kGvImpacts : 0)));
      if (gv_ids) {
        kern::GroupVarintEncode(id_u32.data(), id_u32.size(), w);
      } else {
        for (size_t i = 0; i < popped; ++i) w.PutVarint(list.postings[i].id);
      }
      if (gv_impacts) {
        kern::GroupVarintEncode(hi_u32.data(), hi_u32.size(), w);
        for (size_t i = 0; i < popped; ++i) {
          uint64_t bits = std::bit_cast<uint64_t>(list.postings[i].impact);
          w.PutU32(static_cast<uint32_t>(bits));
        }
      } else {
        for (size_t i = 0; i < popped; ++i) w.PutF64(list.postings[i].impact);
      }
    }
    bool has_remaining = popped < list.postings.size();
    bool relevant_list = it != relevant_by_cluster.end();
    bool filter_included = use_filters && relevant_list && has_remaining;
    uint8_t flags = (has_remaining ? 1 : 0) | (filter_included ? 2 : 0);
    w.PutU8(flags);
    if (has_remaining) {
      crypto::PutDigest(w, list.postings[popped].digest);
    }
    if (use_filters) {
      if (filter_included) {
        w.PutBlob(list.filter->Serialize());
      } else {
        crypto::PutDigest(w, list.theta_digest);
      }
    }
  }
  result.vo = w.Take();
  return result;
}

}  // namespace imageproof::invindex
