#include "invindex/bounds.h"

#include <algorithm>

namespace imageproof::invindex {

BoundsEngine::BoundsEngine(std::vector<BoundsList> lists, bool use_filters)
    : use_filters_(use_filters) {
  lists_.reserve(lists.size());
  for (BoundsList& l : lists) {
    ListState state;
    state.cluster = l.cluster;
    state.q_impact = l.q_impact;
    state.filter = std::move(l.filter);
    lists_.push_back(std::move(state));
  }
  if (use_filters_) {
    std::vector<const cuckoo::CuckooFilter*> filters;
    for (const ListState& l : lists_) {
      if (l.filter.has_value()) filters.push_back(&*l.filter);
    }
    tracker_.emplace(filters);
  }
}

Status BoundsEngine::AddPopped(size_t li, ImageId id, double impact,
                               double cap) {
  ListState& l = lists_[li];
  if (l.exhausted) {
    return Status::Error("bounds: popped posting after list exhausted");
  }
  if (impact < 0 || cap < 0) return Status::Error("bounds: negative impact");
  if (cap > l.cap || impact > cap) {
    return Status::Error("bounds: postings not in impact order");
  }
  if (!l.popped_ids.insert(id).second) {
    return Status::Error("bounds: image popped twice in one list");
  }
  l.cap = cap;
  ++l.popped_count;
  scores_[id] += l.q_impact * impact;

  if (use_filters_ && l.filter.has_value()) {
    uint32_t bucket = 0;
    if (!l.filter->Delete(id, &bucket)) {
      return Status::Error("bounds: popped image missing from cuckoo filter");
    }
    tracker_->OnDelete(bucket, l.filter->Fingerprint(id));
  }
  return Status::Ok();
}

void BoundsEngine::MarkExhausted(size_t li) { lists_[li].exhausted = true; }

double BoundsEngine::Cap(size_t li) const {
  const ListState& l = lists_[li];
  if (l.exhausted) return 0.0;
  return l.cap;  // +infinity until something is popped
}

double BoundsEngine::ScoreOf(ImageId id) const {
  auto it = scores_.find(id);
  return it == scores_.end() ? 0.0 : it->second;
}

uint32_t BoundsEngine::Gamma() const {
  uint32_t remaining_lists = 0;
  for (const ListState& l : lists_) {
    if (!l.exhausted) ++remaining_lists;
  }
  if (!use_filters_) return remaining_lists;
  return std::min(tracker_->Gamma(), remaining_lists);
}

double BoundsEngine::PiUpper() const {
  uint32_t gamma = Gamma();
  if (gamma == 0) return 0.0;
  std::vector<double> contributions;
  contributions.reserve(lists_.size());
  for (size_t li = 0; li < lists_.size(); ++li) {
    const ListState& l = lists_[li];
    if (l.exhausted) continue;
    double cap = Cap(li);
    contributions.push_back(l.q_impact * cap);  // may be +inf pre-pop
  }
  if (contributions.size() > gamma) {
    std::partial_sort(contributions.begin(), contributions.begin() + gamma,
                      contributions.end(), std::greater<double>());
    contributions.resize(gamma);
  }
  double sum = 0;
  for (double c : contributions) sum += c;
  return sum;
}

std::vector<size_t> BoundsEngine::PossibleLists(ImageId id) const {
  std::vector<size_t> out;
  for (size_t li = 0; li < lists_.size(); ++li) {
    const ListState& l = lists_[li];
    if (l.exhausted) continue;
    if (l.popped_ids.contains(id)) continue;
    if (use_filters_ && l.filter.has_value() && !l.filter->Contains(id)) {
      continue;
    }
    out.push_back(li);
  }
  return out;
}

double BoundsEngine::SUpper(ImageId id) const {
  double bound = ScoreOf(id);
  for (size_t li : PossibleLists(id)) {
    bound += lists_[li].q_impact * Cap(li);
  }
  return bound;
}

bool VerifyClaimedTopK(const BoundsEngine& engine,
                       const std::vector<ImageId>& claimed, double* sk_lower) {
  const auto& scores = engine.Scores();
  // The claimed ids must all have been popped.
  for (ImageId id : claimed) {
    if (!scores.contains(id)) return false;
  }
  // k best by (score desc, id asc) among popped images.
  std::vector<std::pair<double, ImageId>> ranked;
  ranked.reserve(scores.size());
  for (const auto& [id, score] : scores) ranked.emplace_back(score, id);
  auto better = [](const std::pair<double, ImageId>& a,
                   const std::pair<double, ImageId>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  size_t k = claimed.size();
  if (k > ranked.size()) return false;
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(), better);

  std::vector<ImageId> best(k);
  for (size_t i = 0; i < k; ++i) best[i] = ranked[i].second;
  std::vector<ImageId> claimed_sorted = claimed;
  std::sort(best.begin(), best.end());
  std::sort(claimed_sorted.begin(), claimed_sorted.end());
  if (best != claimed_sorted) return false;

  *sk_lower = k == 0 ? 0.0 : ranked[k - 1].first;
  return true;
}

}  // namespace imageproof::invindex
