#include "invindex/merkle_inv_index.h"

#include <algorithm>
#include <cstring>

#include "common/parallel.h"
#include "crypto/hasher.h"
#include "crypto/sha3.h"

namespace imageproof::invindex {

namespace {

// Canonical little-endian stores for assembling posting preimages outside
// DigestBuilder (same bytes AddU64/AddF64 stream into the sponge).
void PutU64Le(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
void PutF64Le(uint8_t* p, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64Le(p, bits);
}

// Posting preimage: id(8) | impact(8) | next(32) — one sponge block.
constexpr size_t kPostingMsg = 8 + 8 + crypto::kDigestSize;

// Walks the backward digest chains of a range of lists four at a time on
// the lane-interleaved Keccak. A chain is inherently sequential (posting i
// needs digest i+1), but chains of different lists are independent, so each
// lane carries one list and every Step() completes one posting per lane —
// the same digests as the serial loop at ~4x the permutation throughput.
// A drained lane picks up the next list in the range.
void ChainLists(MerkleInvertedList** lists, size_t n) {
  struct Lane {
    MerkleInvertedList* list = nullptr;
    size_t i = 0;  // postings remaining (current posting is i - 1)
    Digest next = Digest::Zero();
  };
  crypto::Sha3x4 eng;
  Lane lanes[crypto::Sha3x4::kLanes];
  uint8_t buf[crypto::Sha3x4::kLanes][kPostingMsg];
  size_t next_list = 0;
  int active = 0;

  auto start_msg = [&](int j) {
    Lane& lane = lanes[j];
    const MerklePosting& p = lane.list->postings[lane.i - 1];
    PutU64Le(buf[j], p.id);
    PutF64Le(buf[j] + 8, p.impact);
    std::memcpy(buf[j] + 16, lane.next.bytes.data(), crypto::kDigestSize);
    eng.Start(j, buf[j], kPostingMsg);
  };
  auto feed = [&](int j) -> bool {
    while (next_list < n) {
      MerkleInvertedList* l = lists[next_list++];
      if (l->postings.empty()) continue;
      lanes[j] = Lane{l, l->postings.size(), Digest::Zero()};
      start_msg(j);
      return true;
    }
    return false;
  };

  for (int j = 0; j < crypto::Sha3x4::kLanes; ++j) {
    if (feed(j)) ++active;
  }
  while (active > 0) {
    eng.Step();
    for (int j = 0; j < crypto::Sha3x4::kLanes; ++j) {
      if (!eng.done(j)) continue;
      Lane& lane = lanes[j];
      lane.next = eng.Take(j);
      lane.list->postings[lane.i - 1].digest = lane.next;
      if (--lane.i > 0) {
        start_msg(j);
      } else if (!feed(j)) {
        --active;
      }
    }
  }
}

}  // namespace

Digest PostingDigest(ImageId id, double impact, const Digest& next) {
  return crypto::DigestBuilder()
      .AddU64(id)
      .AddF64(impact)
      .AddDigest(next)
      .Finalize();
}

Digest ListDigest(double weight, const Digest& theta_digest,
                  const Digest& first_posting_digest) {
  return crypto::DigestBuilder()
      .AddF64(weight)
      .AddDigest(theta_digest)
      .AddDigest(first_posting_digest)
      .Finalize();
}

MerkleInvertedIndex MerkleInvertedIndex::Build(
    size_t num_clusters,
    const std::vector<std::pair<ImageId, bovw::BovwVector>>& corpus,
    const bovw::ClusterWeights& weights, bool with_filters,
    uint32_t fingerprint_bits, uint64_t filter_seed,
    std::optional<cuckoo::CuckooParams> geometry) {
  MerkleInvertedIndex index;
  index.with_filters_ = with_filters;
  index.lists_.resize(num_clusters);

  // Gather raw postings per cluster.
  std::vector<std::vector<std::pair<ImageId, double>>> raw(num_clusters);
  for (const auto& [id, vec] : corpus) {
    double norm = vec.L2Norm();
    for (const auto& [c, f] : vec.entries) {
      if (c >= num_clusters) continue;
      double impact = bovw::ImpactValue(weights.WeightOf(c), f, norm);
      raw[c].emplace_back(id, impact);
    }
  }

  if (geometry.has_value()) {
    index.filter_params_ = *geometry;
  } else {
    size_t max_len = 1;
    for (const auto& r : raw) max_len = std::max(max_len, r.size());
    index.filter_params_ = cuckoo::CuckooParams::ForMaxItems(
        max_len, fingerprint_bits, filter_seed);
  }
  const cuckoo::CuckooParams& filter_params = index.filter_params_;

  // Every list is built independently (sort, filter, digest chain), so the
  // per-cluster loop parallelizes with bit-identical results. Chunked so
  // each worker can interleave the digest chains of its lists across the
  // four Keccak lanes.
  ParallelChunks(num_clusters, /*chunk=*/16, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      MerkleInvertedList& list = index.lists_[c];
      list.cluster = static_cast<ClusterId>(c);
      list.weight = weights.WeightOf(static_cast<ClusterId>(c));

      auto& postings = raw[c];
      std::sort(postings.begin(), postings.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      list.postings.resize(postings.size());
      for (size_t i = 0; i < postings.size(); ++i) {
        list.postings[i].id = postings[i].first;
        list.postings[i].impact = postings[i].second;
      }

      if (with_filters) {
        cuckoo::CuckooFilter filter(filter_params);
        for (const MerklePosting& p : list.postings) {
          // The 60% sizing rule keeps load under ~42%, so insertion cannot
          // realistically fail; if it ever did the ADS would be unusable, so
          // treat it as a fatal construction error.
          bool ok = filter.Insert(p.id);
          (void)ok;
        }
        list.theta_digest = filter.StateDigest();
        list.filter = std::move(filter);
      } else {
        list.theta_digest = Digest::Zero();
      }
    }

    std::vector<MerkleInvertedList*> ptrs;
    ptrs.reserve(end - begin);
    for (size_t c = begin; c < end; ++c) ptrs.push_back(&index.lists_[c]);
    ChainLists(ptrs.data(), ptrs.size());
    for (size_t c = begin; c < end; ++c) {
      MerkleInvertedList& list = index.lists_[c];
      list.digest = ListDigest(list.weight, list.theta_digest,
                               list.FirstPostingDigest());
    }
  });
  return index;
}

Result<MerkleInvertedIndex> MerkleInvertedIndex::Restore(
    const cuckoo::CuckooParams& geometry, bool with_filters,
    std::vector<MerkleInvertedList> lists) {
  MerkleInvertedIndex index;
  index.with_filters_ = with_filters;
  index.filter_params_ = geometry;
  for (size_t c = 0; c < lists.size(); ++c) {
    MerkleInvertedList& list = lists[c];
    if (list.cluster != static_cast<ClusterId>(c)) {
      return Status::Corrupted("inv restore: cluster id out of place");
    }
    // The committed ordering invariant (impact desc, id asc on ties) is what
    // PostingSearch's early-exit bounds rely on; a stored list violating it
    // is corrupt regardless of what its digests say.
    for (size_t i = 1; i < list.postings.size(); ++i) {
      const MerklePosting& a = list.postings[i - 1];
      const MerklePosting& b = list.postings[i];
      if (!(a.impact > b.impact || (a.impact == b.impact && a.id < b.id))) {
        return Status::Corrupted("inv restore: postings out of order");
      }
    }
    if (with_filters) {
      if (!list.filter.has_value() || list.filter->params() != geometry) {
        return Status::Corrupted(
            "inv restore: filter missing or geometry diverges");
      }
      list.theta_digest = list.filter->StateDigest();
    } else {
      if (list.filter.has_value()) {
        return Status::Corrupted("inv restore: unexpected filter");
      }
      list.theta_digest = Digest::Zero();
    }
    list.digest =
        ListDigest(list.weight, list.theta_digest, list.FirstPostingDigest());
  }
  index.lists_ = std::move(lists);
  return index;
}

Status MerkleInvertedIndex::VerifyChains() const {
  for (const MerkleInvertedList& list : lists_) {
    Digest next = Digest::Zero();
    for (size_t i = list.postings.size(); i-- > 0;) {
      next = PostingDigest(list.postings[i].id, list.postings[i].impact, next);
      if (next != list.postings[i].digest) {
        return Status::Corrupted("inv: stored posting chain digest diverges");
      }
    }
  }
  return Status::Ok();
}

Status MerkleInvertedIndex::RepairList(MerkleInvertedList* list, size_t upto) {
  if (with_filters_) {
    // The filter's state depends on insertion order over the whole list, so
    // it is always rebuilt in full (theta_digest must stay byte-identical
    // to a from-scratch build).
    cuckoo::CuckooFilter filter(filter_params_);
    for (const MerklePosting& p : list->postings) {
      if (!filter.Insert(p.id)) {
        return Status::Error(
            "inv: list outgrew the shared filter geometry; full rebuild "
            "required");
      }
    }
    list->theta_digest = filter.StateDigest();
    list->filter = std::move(filter);
  }
  // A posting's digest depends only on the chain suffix from it onward, so
  // entries at index >= upto are still valid: anchor there and recompute
  // only the prefix.
  upto = std::min(upto, list->postings.size());
  Digest next = upto < list->postings.size() ? list->postings[upto].digest
                                             : Digest::Zero();
  for (size_t i = upto; i-- > 0;) {
    next = PostingDigest(list->postings[i].id, list->postings[i].impact, next);
    list->postings[i].digest = next;
  }
  list->digest =
      ListDigest(list->weight, list->theta_digest, list->FirstPostingDigest());
  return Status::Ok();
}

Status MerkleInvertedIndex::ApplyInsert(ClusterId c, ImageId id, double impact) {
  if (c >= lists_.size()) return Status::Error("inv: cluster out of range");
  MerkleInvertedList& list = lists_[c];
  for (const MerklePosting& p : list.postings) {
    if (p.id == id) return Status::Error("inv: image already in list");
  }
  MerklePosting posting;
  posting.id = id;
  posting.impact = impact;
  auto pos = std::lower_bound(
      list.postings.begin(), list.postings.end(), posting,
      [](const MerklePosting& a, const MerklePosting& b) {
        if (a.impact != b.impact) return a.impact > b.impact;
        return a.id < b.id;
      });
  const size_t p = static_cast<size_t>(pos - list.postings.begin());
  list.postings.insert(pos, posting);
  // Digests after the insertion point are untouched: recompute [0, p].
  return RepairList(&list, p + 1);
}

Status MerkleInvertedIndex::ApplyRemove(ClusterId c, ImageId id) {
  if (c >= lists_.size()) return Status::Error("inv: cluster out of range");
  MerkleInvertedList& list = lists_[c];
  auto pos = std::find_if(list.postings.begin(), list.postings.end(),
                          [id](const MerklePosting& p) { return p.id == id; });
  if (pos == list.postings.end()) {
    return Status::Error("inv: image not in list");
  }
  const size_t p = static_cast<size_t>(pos - list.postings.begin());
  list.postings.erase(pos);
  // The suffix that followed the removed posting keeps its digests:
  // recompute [0, p).
  return RepairList(&list, p);
}

std::vector<Digest> MerkleInvertedIndex::ListDigests() const {
  std::vector<Digest> out(lists_.size());
  for (size_t i = 0; i < lists_.size(); ++i) out[i] = lists_[i].digest;
  return out;
}

size_t MerkleInvertedIndex::TotalPostings() const {
  size_t n = 0;
  for (const auto& l : lists_) n += l.postings.size();
  return n;
}

}  // namespace imageproof::invindex
