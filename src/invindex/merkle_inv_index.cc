#include "invindex/merkle_inv_index.h"

#include <algorithm>

#include "common/parallel.h"
#include "crypto/hasher.h"

namespace imageproof::invindex {

Digest PostingDigest(ImageId id, double impact, const Digest& next) {
  return crypto::DigestBuilder()
      .AddU64(id)
      .AddF64(impact)
      .AddDigest(next)
      .Finalize();
}

Digest ListDigest(double weight, const Digest& theta_digest,
                  const Digest& first_posting_digest) {
  return crypto::DigestBuilder()
      .AddF64(weight)
      .AddDigest(theta_digest)
      .AddDigest(first_posting_digest)
      .Finalize();
}

MerkleInvertedIndex MerkleInvertedIndex::Build(
    size_t num_clusters,
    const std::vector<std::pair<ImageId, bovw::BovwVector>>& corpus,
    const bovw::ClusterWeights& weights, bool with_filters,
    uint32_t fingerprint_bits, uint64_t filter_seed) {
  MerkleInvertedIndex index;
  index.with_filters_ = with_filters;
  index.lists_.resize(num_clusters);

  // Gather raw postings per cluster.
  std::vector<std::vector<std::pair<ImageId, double>>> raw(num_clusters);
  for (const auto& [id, vec] : corpus) {
    double norm = vec.L2Norm();
    for (const auto& [c, f] : vec.entries) {
      if (c >= num_clusters) continue;
      double impact = bovw::ImpactValue(weights.WeightOf(c), f, norm);
      raw[c].emplace_back(id, impact);
    }
  }

  size_t max_len = 1;
  for (const auto& r : raw) max_len = std::max(max_len, r.size());
  index.filter_params_ =
      cuckoo::CuckooParams::ForMaxItems(max_len, fingerprint_bits, filter_seed);
  const cuckoo::CuckooParams& filter_params = index.filter_params_;

  // Every list is built independently (sort, filter, digest chain), so the
  // per-cluster loop parallelizes with bit-identical results.
  ParallelFor(num_clusters, [&](size_t c) {
    MerkleInvertedList& list = index.lists_[c];
    list.cluster = static_cast<ClusterId>(c);
    list.weight = weights.WeightOf(static_cast<ClusterId>(c));

    auto& postings = raw[c];
    std::sort(postings.begin(), postings.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    list.postings.resize(postings.size());
    for (size_t i = 0; i < postings.size(); ++i) {
      list.postings[i].id = postings[i].first;
      list.postings[i].impact = postings[i].second;
    }

    if (with_filters) {
      cuckoo::CuckooFilter filter(filter_params);
      for (const MerklePosting& p : list.postings) {
        // The 60% sizing rule keeps load under ~42%, so insertion cannot
        // realistically fail; if it ever did the ADS would be unusable, so
        // treat it as a fatal construction error.
        bool ok = filter.Insert(p.id);
        (void)ok;
      }
      list.theta_digest = filter.StateDigest();
      list.filter = std::move(filter);
    } else {
      list.theta_digest = Digest::Zero();
    }

    // Backward digest chain.
    Digest next = Digest::Zero();
    for (size_t i = list.postings.size(); i-- > 0;) {
      next = PostingDigest(list.postings[i].id, list.postings[i].impact, next);
      list.postings[i].digest = next;
    }
    list.digest = ListDigest(list.weight, list.theta_digest,
                             list.FirstPostingDigest());
  });
  return index;
}

Status MerkleInvertedIndex::RechainList(MerkleInvertedList* list) {
  if (with_filters_) {
    cuckoo::CuckooFilter filter(filter_params_);
    for (const MerklePosting& p : list->postings) {
      if (!filter.Insert(p.id)) {
        return Status::Error(
            "inv: list outgrew the shared filter geometry; full rebuild "
            "required");
      }
    }
    list->theta_digest = filter.StateDigest();
    list->filter = std::move(filter);
  }
  Digest next = Digest::Zero();
  for (size_t i = list->postings.size(); i-- > 0;) {
    next = PostingDigest(list->postings[i].id, list->postings[i].impact, next);
    list->postings[i].digest = next;
  }
  list->digest =
      ListDigest(list->weight, list->theta_digest, list->FirstPostingDigest());
  return Status::Ok();
}

Status MerkleInvertedIndex::ApplyInsert(ClusterId c, ImageId id, double impact) {
  if (c >= lists_.size()) return Status::Error("inv: cluster out of range");
  MerkleInvertedList& list = lists_[c];
  for (const MerklePosting& p : list.postings) {
    if (p.id == id) return Status::Error("inv: image already in list");
  }
  MerklePosting posting;
  posting.id = id;
  posting.impact = impact;
  auto pos = std::lower_bound(
      list.postings.begin(), list.postings.end(), posting,
      [](const MerklePosting& a, const MerklePosting& b) {
        if (a.impact != b.impact) return a.impact > b.impact;
        return a.id < b.id;
      });
  list.postings.insert(pos, posting);
  return RechainList(&list);
}

Status MerkleInvertedIndex::ApplyRemove(ClusterId c, ImageId id) {
  if (c >= lists_.size()) return Status::Error("inv: cluster out of range");
  MerkleInvertedList& list = lists_[c];
  auto pos = std::find_if(list.postings.begin(), list.postings.end(),
                          [id](const MerklePosting& p) { return p.id == id; });
  if (pos == list.postings.end()) {
    return Status::Error("inv: image not in list");
  }
  list.postings.erase(pos);
  return RechainList(&list);
}

std::vector<Digest> MerkleInvertedIndex::ListDigests() const {
  std::vector<Digest> out(lists_.size());
  for (size_t i = 0; i < lists_.size(); ++i) out[i] = lists_[i].digest;
  return out;
}

size_t MerkleInvertedIndex::TotalPostings() const {
  size_t n = 0;
  for (const auto& l : lists_) n += l.postings.size();
  return n;
}

}  // namespace imageproof::invindex
