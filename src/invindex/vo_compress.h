// Shared constants and helpers for the compressed inverted-index /
// frequency-group VO encodings (InvSearchParams::compress_vo).
//
// The leading VO flag byte carries bit 0 = use_filters (as always) and
// bit 1 = compressed. Parsers that predate compression reject any value
// above 1 as non-canonical, which is exactly the backward-compatibility
// story: a compressed VO can never be mis-parsed by an old client, it is
// simply refused, and the server only compresses after the client opts in
// through the query-frame flag (net/wire.h).
//
// Inside a compressed VO, integer sequences use the group-varint coding
// from common/varint_kernels.h. BoVW norms — digest material that must be
// reconstructed bit-exactly — ride as their *squared* value: frequencies
// are small integers, so ||B_I||^2 is an exact integer that fits u32 for
// every corpus this system can build, and IEEE-754 sqrt is correctly
// rounded, so sqrt(double(m)) returns the identical double on every
// conforming machine. The encoder still proves that per value (round-trip
// bit check) and falls back to raw f64 for any group where it fails, so
// compression can never change what the verifier hashes.

#ifndef IMAGEPROOF_INVINDEX_VO_COMPRESS_H_
#define IMAGEPROOF_INVINDEX_VO_COMPRESS_H_

#include <bit>
#include <cmath>
#include <cstdint>

namespace imageproof::invindex {

// Bit 1 of the VO's leading flag byte (bit 0 remains use_filters).
inline constexpr uint8_t kVoFlagCompressed = 2;

// Per-group / per-list flags inside a compressed VO.
inline constexpr uint8_t kGvIds = 1;      // ids: one group-varint gap block
inline constexpr uint8_t kGvNormsSq = 2;  // norms: u32 squared-norm block
inline constexpr uint8_t kGvImpacts = 2;  // impacts: hi-delta + raw lo32

// True when `norm` survives the squared-integer round trip; *m is then the
// exact wire value. Encoder-side only — decoders just take sqrt.
inline bool SquaredNormU32(double norm, uint32_t* m) {
  if (!(norm > 0)) return false;
  double sq = norm * norm;
  double rounded = std::nearbyint(sq);
  if (!(rounded >= 1) || rounded > 4294967295.0) return false;
  uint32_t cand = static_cast<uint32_t>(rounded);
  if (std::bit_cast<uint64_t>(std::sqrt(static_cast<double>(cand))) !=
      std::bit_cast<uint64_t>(norm)) {
    return false;
  }
  *m = cand;
  return true;
}

}  // namespace imageproof::invindex

#endif  // IMAGEPROOF_INVINDEX_VO_COMPRESS_H_
