// PostingSearch + InvSearch (Algorithms 3 and 4): SP-side top-k search over
// the Merkle inverted index and VO generation.
//
// The SP first pops, for every relevant list, the prefix covering all
// occurrences of the exact top-k images (plus at least the head posting so
// every remaining-impact cap is finite), then keeps popping until both
// termination conditions hold:
//   Condition 1: s_k^L >= pi^U
//   Condition 2: s_k^L >= S^U(Q, I) for every popped I outside the top-k
// Bounds come from invindex/bounds.h — with cuckoo filters (InvSearch) or
// the loose Eq. (10) bounds (Baseline) depending on how the index was
// built. Before emitting the VO the SP re-evaluates both conditions on a
// canonically-ordered engine (exactly what the client will run), so
// floating-point summation order can never make an honest VO fail
// verification.
//
// VO layout (all canonical encodings):
//   u8   flags: bit0 use_filters, bit1 compressed (vo_compress.h)
//   varint num_lists                     -- every cluster in the query's
//   per list (cluster ascending):           BoVW support, relevant or not
//     varint cluster_id
//     f64 weight w_c
//     varint num_popped
//       uncompressed: per posting varint image_id, f64 impact
//       compressed (num_popped > 0): u8 list_flags (bit0 ids as one
//         group-varint zigzag-delta block, bit1 impacts as a group-varint
//         block of non-increasing IEEE-754 high words plus raw low words);
//         then the id stream, then the impact stream, with per-value
//         fallbacks (absolute varint ids / raw f64) when a bit is clear
//     u8 flags (bit0 has_remaining, bit1 filter_included)
//     [has_remaining]   digest of first unpopped posting
//     [filter_included] blob: original cuckoo filter
//     [use_filters && !filter_included] digest h(Theta)

#ifndef IMAGEPROOF_INVINDEX_SEARCH_H_
#define IMAGEPROOF_INVINDEX_SEARCH_H_

#include <vector>

#include "common/bytes.h"
#include "common/kernels.h"
#include "invindex/bounds.h"
#include "invindex/merkle_inv_index.h"

namespace imageproof::invindex {

struct InvSearchParams {
  size_t k = 10;
  // Postings popped between termination-condition re-checks (the paper's
  // batching optimization over [15], which re-checked per posting).
  size_t check_batch = 16;
  // Extension (off by default = Algorithm 3 line 1 verbatim): instead of
  // eagerly popping every occurrence of every top-k image up front, start
  // from one posting per list and reveal top-k occurrences lazily, highest
  // impact first, only until the claimed set provably dominates. Deep
  // low-impact occurrences of result images — which line 1 pays for in
  // full — are then usually never popped. See bench/abl_lazy_topk.
  bool lazy_topk_pops = false;
  // Extension (off by default): serialize popped postings/groups with
  // group-varint compression (common/varint_kernels.h). Signalled on the
  // wire by flag-byte bit 1, which pre-compression parsers reject as
  // non-canonical, so it is only enabled for clients that negotiated it
  // (net/wire.h query-frame flag). Digest material is reconstructed from
  // the decoded values, so verification is unchanged.
  bool compress_vo = false;
  // Extension (off by default): after the termination conditions hold, keep
  // popping until no unpopped suffix of any relevant list can still contain
  // a claimed top-k image (every claimed id's PossibleLists set is empty),
  // so the verified score of every claimed result is provably *exact*, not
  // just a lower bound (InvVerifyResult::topk_exact). The sharded
  // coordinator (src/shard) requires this: a composite top-k merged from
  // per-shard verified scores is only the provable global top-k when those
  // scores are exact. With filters the extra pops only fire on a cuckoo
  // false positive; without filters (Baseline) it drains every relevant
  // list, which is why sharded serving is an ImageProof-config feature.
  bool settle_exact_topk = false;
};

struct InvSearchStats {
  size_t popped_postings = 0;
  size_t relevant_postings = 0;  // total postings in relevant lists
  size_t relevant_lists = 0;
  size_t condition_checks = 0;
  // Breakdown of popped_postings by search phase.
  size_t popped_initial = 0;  // Algorithm 3 line 1 (top-k occurrences)
  size_t popped_cond1 = 0;
  size_t popped_cond2 = 0;
  size_t popped_settle = 0;  // settle_exact_topk extension

  double PoppedFraction() const {
    return relevant_postings == 0
               ? 0.0
               : static_cast<double>(popped_postings) / relevant_postings;
  }
};

struct InvSearchResult {
  std::vector<bovw::ScoredImage> topk;  // exact scores, best first
  Bytes vo;
  InvSearchStats stats;
};

// Runs the authenticated top-k search for a query BoVW vector. The bound
// mode (filters vs. loose) follows index.with_filters(). `scratch`
// (optional) supplies the reusable score accumulator and top-k heap so a
// warm exact-scoring pass allocates nothing; output is identical either
// way.
InvSearchResult InvSearch(const MerkleInvertedIndex& index,
                          const bovw::BovwVector& query_bovw,
                          const InvSearchParams& params,
                          kern::SearchScratch* scratch = nullptr);

}  // namespace imageproof::invindex

#endif  // IMAGEPROOF_INVINDEX_SEARCH_H_
