// Shared bounds engine for PostingSearch (Algorithm 3) and its client-side
// verification.
//
// Both the SP (while deciding which postings to pop) and the client (while
// checking the termination conditions) must compute *identical* values for
//   s_k^L              k-th best lower-bound score of the claimed results
//   pi^U   (Eq. 12)    bound on any image not seen in the popped prefixes,
//                      via gamma from MaxCount (Algorithm 2)
//   S^U(I) (Eq. 11)    bound on a popped image's full score
// so the logic lives here, in one place, consumed by both sides. All state
// transitions are driven by AddPopped()/MarkExhausted() in canonical order
// (lists sorted by cluster id, postings in prefix order), which makes the
// post-deletion cuckoo-filter states — and therefore every bound —
// bit-reproducible across the SP/client boundary.
//
// With `use_filters = false` the engine degrades to the loose bounds of
// Eq. (10) (every remaining list may contain any image), which is the
// Baseline scheme adapted from Pang & Mouratidis [15].

#ifndef IMAGEPROOF_INVINDEX_BOUNDS_H_
#define IMAGEPROOF_INVINDEX_BOUNDS_H_

#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bovw/bovw.h"
#include "common/status.h"
#include "cuckoo/cuckoo_filter.h"

namespace imageproof::invindex {

using bovw::ClusterId;
using bovw::ImageId;

// One relevant posting list as seen by the bounds engine.
struct BoundsList {
  ClusterId cluster = 0;
  double q_impact = 0.0;  // p_{Q,c} > 0
  // The list's cuckoo filter in its *original* (owner-built) state; the
  // engine deletes popped images from a private copy. nullopt for lists
  // that are fully revealed (exhausted) or in baseline mode.
  std::optional<cuckoo::CuckooFilter> filter;
};

class BoundsEngine {
 public:
  BoundsEngine(std::vector<BoundsList> lists, bool use_filters);

  size_t NumLists() const { return lists_.size(); }
  const BoundsList& list(size_t li) const { return lists_[li]; }

  // Feeds the next popped posting of list `li`, in prefix order, together
  // with the new upper bound `cap` on the impact of everything still
  // unpopped in the list (for the plain impact-ordered index cap == impact;
  // for the frequency-grouped index it is the containing group's impact).
  // Enforces cap monotonicity, impact <= cap, and image uniqueness, and
  // removes the image from the list's filter. The exact posting order is
  // additionally pinned by the digest chain, so these checks are
  // consistency guards, not the only line of defense.
  Status AddPopped(size_t li, ImageId id, double impact, double cap);
  // Plain-index convenience: cap == impact.
  Status AddPopped(size_t li, ImageId id, double impact) {
    return AddPopped(li, id, impact, impact);
  }

  // Declares that every posting of list `li` has been popped.
  void MarkExhausted(size_t li);
  bool Exhausted(size_t li) const { return lists_[li].exhausted; }

  // Upper bound on the impact of any unpopped posting in list `li`
  // (+infinity until the first pop; 0 once exhausted).
  double Cap(size_t li) const;

  size_t PoppedCount(size_t li) const { return lists_[li].popped_count; }

  // Lower-bound score S^L(Q, I) accumulated from popped postings (Eq. 9);
  // 0 for images never popped.
  double ScoreOf(ImageId id) const;
  const std::unordered_map<ImageId, double>& Scores() const { return scores_; }

  bool PoppedIn(size_t li, ImageId id) const {
    return lists_[li].popped_ids.contains(id);
  }

  // gamma (Algorithm 2), additionally capped by the number of lists that
  // still have unpopped postings.
  uint32_t Gamma() const;

  // pi^U (Eq. 12): sum of the gamma largest q_impact * Cap values over
  // lists with remaining postings.
  double PiUpper() const;

  // S^U(Q, I) (Eq. 11, sound form): S^L plus the remaining caps of every
  // list whose filter still reports I present (all remaining lists in
  // baseline mode) where I has not been popped.
  double SUpper(ImageId id) const;

  // Lists that may still contain I among their unpopped postings.
  std::vector<size_t> PossibleLists(ImageId id) const;

 private:
  struct ListState : BoundsList {
    bool exhausted = false;
    size_t popped_count = 0;
    double cap = std::numeric_limits<double>::infinity();
    std::unordered_set<ImageId> popped_ids;
  };

  bool use_filters_;
  std::vector<ListState> lists_;
  std::unordered_map<ImageId, double> scores_;
  std::optional<cuckoo::MaxCountTracker> tracker_;
};

// Helper shared by SP and client: the k-th best (score desc, id asc)
// entry's score among `ids` using the engine's lower bounds; the claimed
// result set must be exactly the k best popped images. Returns false if
// `claimed` is not that set.
bool VerifyClaimedTopK(const BoundsEngine& engine,
                       const std::vector<ImageId>& claimed, double* sk_lower);

}  // namespace imageproof::invindex

#endif  // IMAGEPROOF_INVINDEX_BOUNDS_H_
