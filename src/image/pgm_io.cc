#include "image/pgm_io.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace imageproof::image {

namespace {

// Skips whitespace and '#' comment lines in a PGM header.
void SkipSeparators(const Bytes& data, size_t* pos) {
  while (*pos < data.size()) {
    uint8_t c = data[*pos];
    if (c == '#') {
      while (*pos < data.size() && data[*pos] != '\n') ++(*pos);
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++(*pos);
    } else {
      break;
    }
  }
}

Status ParseInt(const Bytes& data, size_t* pos, int* out) {
  SkipSeparators(data, pos);
  if (*pos >= data.size() || data[*pos] < '0' || data[*pos] > '9') {
    return Status::Error("pgm: expected integer in header");
  }
  long v = 0;
  while (*pos < data.size() && data[*pos] >= '0' && data[*pos] <= '9') {
    v = v * 10 + (data[*pos] - '0');
    if (v > 1 << 20) return Status::Error("pgm: header value too large");
    ++(*pos);
  }
  *out = static_cast<int>(v);
  return Status::Ok();
}

}  // namespace

Bytes EncodePgm(const Image& img) {
  std::string header = "P5\n" + std::to_string(img.width()) + " " +
                       std::to_string(img.height()) + "\n255\n";
  Bytes out(header.begin(), header.end());
  out.insert(out.end(), img.pixels().begin(), img.pixels().end());
  return out;
}

Status DecodePgm(const Bytes& data, Image* out) {
  if (data.size() < 2 || data[0] != 'P' || data[1] != '5') {
    return Status::Error("pgm: missing P5 magic");
  }
  size_t pos = 2;
  int width, height, maxval;
  Status s = ParseInt(data, &pos, &width);
  if (!s.ok()) return s;
  s = ParseInt(data, &pos, &height);
  if (!s.ok()) return s;
  s = ParseInt(data, &pos, &maxval);
  if (!s.ok()) return s;
  if (maxval <= 0 || maxval > 255) return Status::Error("pgm: unsupported maxval");
  if (width <= 0 || height <= 0) return Status::Error("pgm: bad dimensions");
  if (pos >= data.size()) return Status::Error("pgm: truncated header");
  ++pos;  // single whitespace byte after maxval
  size_t n = static_cast<size_t>(width) * height;
  if (data.size() - pos < n) return Status::Error("pgm: truncated pixel data");
  *out = Image(width, height);
  std::copy(data.begin() + pos, data.begin() + pos + n, out->pixels().begin());
  return Status::Ok();
}

Status WritePgmFile(const std::string& path, const Image& img) {
  Bytes data = EncodePgm(img);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::Error("pgm: cannot open for writing: " + path);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::Error("pgm: short write: " + path);
  return Status::Ok();
}

Status ReadPgmFile(const std::string& path, Image* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::Error("pgm: cannot open for reading: " + path);
  Bytes data;
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return DecodePgm(data, out);
}

}  // namespace imageproof::image
