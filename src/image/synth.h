// Deterministic synthetic image generator and photometric/geometric
// transforms.
//
// Substitutes for the MirFlickr1M photographs used in the paper: each seed
// yields a unique textured image with enough local structure for the
// SIFT-style extractor to find keypoints, and the transforms produce
// "similar" variants (rotated / scaled / noisy copies) so retrieval quality
// and the authenticated pipeline can be exercised end to end.

#ifndef IMAGEPROOF_IMAGE_SYNTH_H_
#define IMAGEPROOF_IMAGE_SYNTH_H_

#include <cstdint>

#include "image/image.h"

namespace imageproof::image {

// Generates a width x height textured image from `seed`. The texture mixes
// multi-octave value noise with a handful of high-contrast blobs and bars so
// DoG keypoint detection has strong extrema to latch onto.
Image SynthesizeImage(uint64_t seed, int width = 128, int height = 128);

// Rotates around the image center by `radians` (bilinear, edge-clamped).
Image Rotate(const Image& img, double radians);

// Uniform rescale by `factor` (bilinear). factor must be > 0.
Image Scale(const Image& img, double factor);

// Per-pixel v' = clamp(gain * v + bias).
Image AdjustBrightness(const Image& img, double gain, double bias);

// Adds zero-mean Gaussian pixel noise with the given standard deviation
// (in 0..255 units), deterministically from `seed`.
Image AddNoise(const Image& img, double stddev, uint64_t seed);

// Central crop covering `fraction` of each dimension (0 < fraction <= 1).
Image CenterCrop(const Image& img, double fraction);

}  // namespace imageproof::image

#endif  // IMAGEPROOF_IMAGE_SYNTH_H_
