// Binary PGM (P5) codec so example programs can exchange images with
// standard tools. No external image library is used anywhere in the repo.

#ifndef IMAGEPROOF_IMAGE_PGM_IO_H_
#define IMAGEPROOF_IMAGE_PGM_IO_H_

#include <string>

#include "common/status.h"
#include "image/image.h"

namespace imageproof::image {

// Serializes to the 8-bit binary PGM format ("P5").
Bytes EncodePgm(const Image& img);

// Parses a binary PGM buffer (maxval <= 255).
Status DecodePgm(const Bytes& data, Image* out);

Status WritePgmFile(const std::string& path, const Image& img);
Status ReadPgmFile(const std::string& path, Image* out);

}  // namespace imageproof::image

#endif  // IMAGEPROOF_IMAGE_PGM_IO_H_
