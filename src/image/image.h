// Grayscale image container used by the synthetic dataset generator, the
// PGM codec, and the SIFT-style feature extractor.

#ifndef IMAGEPROOF_IMAGE_IMAGE_H_
#define IMAGEPROOF_IMAGE_IMAGE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace imageproof::image {

// Row-major 8-bit grayscale image.
class Image {
 public:
  Image() = default;
  Image(int width, int height, uint8_t fill = 0)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  uint8_t at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, uint8_t v) {
    pixels_[static_cast<size_t>(y) * width_ + x] = v;
  }

  // Clamped access: coordinates outside the image read the nearest edge
  // pixel. Used by filters and geometric transforms.
  uint8_t AtClamped(int x, int y) const {
    if (x < 0) x = 0;
    if (x >= width_) x = width_ - 1;
    if (y < 0) y = 0;
    if (y >= height_) y = height_ - 1;
    return at(x, y);
  }

  // Bilinear sample at a real-valued position, edge-clamped.
  double Sample(double x, double y) const {
    int x0 = static_cast<int>(x < 0 ? x - 1 : x);
    int y0 = static_cast<int>(y < 0 ? y - 1 : y);
    double fx = x - x0;
    double fy = y - y0;
    double v00 = AtClamped(x0, y0);
    double v10 = AtClamped(x0 + 1, y0);
    double v01 = AtClamped(x0, y0 + 1);
    double v11 = AtClamped(x0 + 1, y0 + 1);
    return v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
           v01 * (1 - fx) * fy + v11 * fx * fy;
  }

  const std::vector<uint8_t>& pixels() const { return pixels_; }
  std::vector<uint8_t>& pixels() { return pixels_; }

  // Raw bytes including dimensions; this is what the owner signs (Eq. 15
  // hashes the raw image data).
  Bytes Serialize() const;
  static bool Deserialize(const Bytes& data, Image* out);

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> pixels_;
};

// Floating-point image plane for filter pipelines (Gaussian pyramid, DoG).
class FloatImage {
 public:
  FloatImage() = default;
  FloatImage(int width, int height, float fill = 0.0f)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height, fill) {}

  static FloatImage From(const Image& img) {
    FloatImage out(img.width(), img.height());
    for (size_t i = 0; i < img.pixels().size(); ++i) {
      out.pixels_[i] = static_cast<float>(img.pixels()[i]) / 255.0f;
    }
    return out;
  }

  int width() const { return width_; }
  int height() const { return height_; }

  float at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, float v) {
    pixels_[static_cast<size_t>(y) * width_ + x] = v;
  }
  float AtClamped(int x, int y) const {
    if (x < 0) x = 0;
    if (x >= width_) x = width_ - 1;
    if (y < 0) y = 0;
    if (y >= height_) y = height_ - 1;
    return at(x, y);
  }

  const std::vector<float>& pixels() const { return pixels_; }
  std::vector<float>& pixels() { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> pixels_;
};

}  // namespace imageproof::image

#endif  // IMAGEPROOF_IMAGE_IMAGE_H_
