#include "image/synth.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "crypto/hasher.h"

namespace imageproof::image {

namespace {

inline uint8_t ClampPixel(double v) {
  if (v < 0) return 0;
  if (v > 255) return 255;
  return static_cast<uint8_t>(v + 0.5);
}

// Hash-based 2D lattice value noise: value at integer (x, y) for a seed.
inline double LatticeValue(uint64_t seed, int x, int y) {
  uint64_t h = crypto::Mix64(seed ^ (static_cast<uint64_t>(static_cast<uint32_t>(x)) |
                                     (static_cast<uint64_t>(static_cast<uint32_t>(y)) << 32)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double SmoothNoise(uint64_t seed, double x, double y) {
  int x0 = static_cast<int>(std::floor(x));
  int y0 = static_cast<int>(std::floor(y));
  double fx = x - x0;
  double fy = y - y0;
  // Smoothstep interpolation weights.
  double sx = fx * fx * (3 - 2 * fx);
  double sy = fy * fy * (3 - 2 * fy);
  double v00 = LatticeValue(seed, x0, y0);
  double v10 = LatticeValue(seed, x0 + 1, y0);
  double v01 = LatticeValue(seed, x0, y0 + 1);
  double v11 = LatticeValue(seed, x0 + 1, y0 + 1);
  double a = v00 + (v10 - v00) * sx;
  double b = v01 + (v11 - v01) * sx;
  return a + (b - a) * sy;
}

}  // namespace

Image SynthesizeImage(uint64_t seed, int width, int height) {
  Rng rng(seed);
  Image img(width, height);

  // Multi-octave value noise base texture.
  double base_freq = 0.04 + rng.NextDouble() * 0.04;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double v = 0, amp = 1, total = 0, freq = base_freq;
      for (int octave = 0; octave < 4; ++octave) {
        v += amp * SmoothNoise(seed + octave * 1315423911ULL, x * freq, y * freq);
        total += amp;
        amp *= 0.55;
        freq *= 2.1;
      }
      img.set(x, y, ClampPixel(255.0 * v / total));
    }
  }

  // High-contrast Gaussian blobs: strong scale-space extrema for the
  // detector.
  int num_blobs = 6 + static_cast<int>(rng.NextBounded(8));
  for (int i = 0; i < num_blobs; ++i) {
    double cx = rng.NextDouble() * width;
    double cy = rng.NextDouble() * height;
    double radius = 3.0 + rng.NextDouble() * 10.0;
    double amplitude = (rng.NextDouble() < 0.5 ? -1 : 1) * (90 + rng.NextDouble() * 120);
    int extent = static_cast<int>(radius * 3);
    for (int y = std::max(0, static_cast<int>(cy) - extent);
         y < std::min(height, static_cast<int>(cy) + extent); ++y) {
      for (int x = std::max(0, static_cast<int>(cx) - extent);
           x < std::min(width, static_cast<int>(cx) + extent); ++x) {
        double dx = x - cx, dy = y - cy;
        double g = std::exp(-(dx * dx + dy * dy) / (2 * radius * radius));
        img.set(x, y, ClampPixel(img.at(x, y) + amplitude * g));
      }
    }
  }

  // A few oriented bars for edge/corner structure.
  int num_bars = 2 + static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < num_bars; ++i) {
    double cx = rng.NextDouble() * width;
    double cy = rng.NextDouble() * height;
    double angle = rng.NextDouble() * 3.14159265;
    double len = 15 + rng.NextDouble() * 30;
    double thick = 1.5 + rng.NextDouble() * 3.0;
    double amplitude = (rng.NextDouble() < 0.5 ? -1 : 1) * (70 + rng.NextDouble() * 90);
    double ca = std::cos(angle), sa = std::sin(angle);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        double dx = x - cx, dy = y - cy;
        double along = dx * ca + dy * sa;
        double across = -dx * sa + dy * ca;
        if (std::abs(along) < len / 2 && std::abs(across) < thick) {
          img.set(x, y, ClampPixel(img.at(x, y) + amplitude));
        }
      }
    }
  }

  return img;
}

Image Rotate(const Image& img, double radians) {
  Image out(img.width(), img.height());
  double cx = img.width() / 2.0, cy = img.height() / 2.0;
  double ca = std::cos(radians), sa = std::sin(radians);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      // Inverse map destination -> source.
      double dx = x - cx, dy = y - cy;
      double sx = cx + dx * ca + dy * sa;
      double sy = cy - dx * sa + dy * ca;
      out.set(x, y, ClampPixel(img.Sample(sx, sy)));
    }
  }
  return out;
}

Image Scale(const Image& img, double factor) {
  int nw = std::max(1, static_cast<int>(img.width() * factor + 0.5));
  int nh = std::max(1, static_cast<int>(img.height() * factor + 0.5));
  Image out(nw, nh);
  for (int y = 0; y < nh; ++y) {
    for (int x = 0; x < nw; ++x) {
      out.set(x, y, ClampPixel(img.Sample(x / factor, y / factor)));
    }
  }
  return out;
}

Image AdjustBrightness(const Image& img, double gain, double bias) {
  Image out(img.width(), img.height());
  for (size_t i = 0; i < img.pixels().size(); ++i) {
    out.pixels()[i] = ClampPixel(gain * img.pixels()[i] + bias);
  }
  return out;
}

Image AddNoise(const Image& img, double stddev, uint64_t seed) {
  Rng rng(seed);
  Image out(img.width(), img.height());
  for (size_t i = 0; i < img.pixels().size(); ++i) {
    out.pixels()[i] = ClampPixel(img.pixels()[i] + stddev * rng.NextGaussian());
  }
  return out;
}

Image CenterCrop(const Image& img, double fraction) {
  int nw = std::max(1, static_cast<int>(img.width() * fraction));
  int nh = std::max(1, static_cast<int>(img.height() * fraction));
  int x0 = (img.width() - nw) / 2;
  int y0 = (img.height() - nh) / 2;
  Image out(nw, nh);
  for (int y = 0; y < nh; ++y) {
    for (int x = 0; x < nw; ++x) {
      out.set(x, y, img.at(x0 + x, y0 + y));
    }
  }
  return out;
}

}  // namespace imageproof::image
