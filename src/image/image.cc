#include "image/image.h"

namespace imageproof::image {

Bytes Image::Serialize() const {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(width_));
  w.PutU32(static_cast<uint32_t>(height_));
  w.PutBytes(pixels_.data(), pixels_.size());
  return w.Take();
}

bool Image::Deserialize(const Bytes& data, Image* out) {
  ByteReader r(data);
  uint32_t w = 0, h = 0;
  if (!r.GetU32(&w).ok() || !r.GetU32(&h).ok()) return false;
  if (w == 0 || h == 0 || w > 1u << 16 || h > 1u << 16) return false;
  size_t n = static_cast<size_t>(w) * h;
  if (r.remaining() != n) return false;
  Bytes pixels;
  if (!r.GetBytes(n, &pixels).ok()) return false;
  *out = Image(static_cast<int>(w), static_cast<int>(h));
  out->pixels() = std::move(pixels);
  return true;
}

}  // namespace imageproof::image
